// Tests for the DSSS (Barker) and CCK modems.
#include <gtest/gtest.h>

#include <cmath>

#include "channel/awgn.h"
#include "common/bits.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/units.h"
#include "dsp/ops.h"
#include "phy/cck.h"
#include "phy/dsss.h"

namespace wlan::phy {
namespace {

TEST(Barker, AutocorrelationSidelobesBoundedByOne) {
  // The defining Barker property: aperiodic autocorrelation sidelobes have
  // magnitude <= 1 (they alternate 0 and -1 for length 11), against a
  // mainlobe of 11.
  for (int shift = 1; shift < 11; ++shift) {
    double acc = 0.0;
    for (int i = 0; i + shift < 11; ++i) {
      acc += kBarker11[static_cast<std::size_t>(i)] *
             kBarker11[static_cast<std::size_t>(i + shift)];
    }
    EXPECT_LE(std::abs(acc), 1.0 + 1e-12) << "shift " << shift;
    const double expected = (shift % 2 == 0) ? -1.0 : 0.0;
    EXPECT_NEAR(acc, expected, 1e-12) << "shift " << shift;
  }
}

class DsssRates : public ::testing::TestWithParam<DsssRate> {};

TEST_P(DsssRates, NoiselessRoundTrip) {
  const DsssModem modem({GetParam(), true});
  Rng rng(1);
  const Bits bits = rng.random_bits(400);
  const CVec chips = modem.modulate(bits);
  EXPECT_EQ(modem.demodulate(chips), bits);
}

TEST_P(DsssRates, UnspreadRoundTrip) {
  const DsssModem modem({GetParam(), false});
  Rng rng(2);
  const Bits bits = rng.random_bits(200);
  EXPECT_EQ(modem.demodulate(modem.modulate(bits)), bits);
}

TEST_P(DsssRates, HighSnrRoundTrip) {
  const DsssModem modem({GetParam(), true});
  Rng rng(3);
  const Bits bits = rng.random_bits(500);
  CVec chips = modem.modulate(bits);
  channel::add_awgn_snr(chips, rng, 15.0);
  EXPECT_EQ(modem.demodulate(chips), bits);
}

INSTANTIATE_TEST_SUITE_P(BothRates, DsssRates,
                         ::testing::Values(DsssRate::k1Mbps, DsssRate::k2Mbps));

TEST(Dsss, ChipCountsAndLayout) {
  const DsssModem spread({DsssRate::k1Mbps, true});
  EXPECT_EQ(spread.chips_per_symbol(), 11u);
  const DsssModem narrow({DsssRate::k1Mbps, false});
  EXPECT_EQ(narrow.chips_per_symbol(), 1u);
  const CVec wave = spread.modulate(Bits{1, 0, 1});
  EXPECT_EQ(wave.size(), 4u * 11u);  // reference + 3 data symbols
}

TEST(Dsss, ConstantEnvelopeChips) {
  const DsssModem modem({DsssRate::k2Mbps, true});
  Rng rng(4);
  const CVec wave = modem.modulate(rng.random_bits(100));
  for (const auto& chip : wave) EXPECT_NEAR(std::abs(chip), 1.0, 1e-12);
}

TEST(Dsss, DbpskBerNearTheory) {
  // DBPSK BER = 0.5 exp(-Eb/N0). Despreading integrates 11 chips, so
  // Eb/N0 = 11 * chip SNR.
  Rng rng(5);
  const DsssModem modem({DsssRate::k1Mbps, true});
  const double chip_snr_db = -3.0;  // Eb/N0 ~ 7.4 dB
  std::size_t errors = 0;
  std::size_t total = 0;
  for (int p = 0; p < 40; ++p) {
    const Bits bits = rng.random_bits(500);
    CVec chips = modem.modulate(bits);
    channel::add_awgn_snr(chips, rng, chip_snr_db);
    errors += hamming_distance(modem.demodulate(chips), bits);
    total += bits.size();
  }
  const double ber = static_cast<double>(errors) / static_cast<double>(total);
  const double ebn0 = 11.0 * db_to_lin(chip_snr_db);
  const double theory = 0.5 * std::exp(-ebn0);
  EXPECT_GT(ber, theory * 0.3);
  EXPECT_LT(ber, theory * 3.0);
}

TEST(Dsss, ProcessingGainAgainstToneJammer) {
  // C2 in miniature: with a tone jammer at SIR = -4 dB (jammer stronger
  // than signal), the spread system still demodulates while the unspread
  // one breaks. Noise is kept negligible to isolate the jammer.
  Rng rng(6);
  const Bits bits = rng.random_bits(600);

  const DsssModem spread({DsssRate::k1Mbps, true});
  CVec wave = spread.modulate(bits);
  const double p_sig = dsp::mean_power(wave);
  channel::add_tone_interferer(wave, rng, p_sig * db_to_lin(4.0), 0.23);
  channel::add_awgn(wave, rng, p_sig * 1e-4);
  const std::size_t spread_errors =
      hamming_distance(spread.demodulate(wave), bits);

  const DsssModem narrow({DsssRate::k1Mbps, false});
  CVec wave2 = narrow.modulate(bits);
  const double p_sig2 = dsp::mean_power(wave2);
  channel::add_tone_interferer(wave2, rng, p_sig2 * db_to_lin(4.0), 0.23);
  channel::add_awgn(wave2, rng, p_sig2 * 1e-4);
  const std::size_t narrow_errors =
      hamming_distance(narrow.demodulate(wave2), bits);

  EXPECT_EQ(spread_errors, 0u);
  EXPECT_GT(narrow_errors, 50u);
}

TEST(Cck, BitsPerSymbol) {
  EXPECT_EQ(cck_bits_per_symbol(CckRate::k5_5Mbps), 4u);
  EXPECT_EQ(cck_bits_per_symbol(CckRate::k11Mbps), 8u);
}

TEST(Cck, BaseCodewordUnitModulusChips) {
  Cplx chips[8];
  CckModem::base_codeword(0.3, 1.1, 2.5, chips);
  for (const auto& c : chips) EXPECT_NEAR(std::abs(c), 1.0, 1e-12);
}

TEST(Cck, CodewordSetHasGoodCrossCorrelation) {
  // Distinct (phi2, phi3, phi4) codewords must correlate weakly compared
  // with the autocorrelation of 8.
  Cplx a[8];
  Cplx b[8];
  CckModem::base_codeword(0.0, 0.0, 0.0, a);
  double max_cross = 0.0;
  for (int p2 = 0; p2 < 4; ++p2) {
    for (int p3 = 0; p3 < 4; ++p3) {
      for (int p4 = 0; p4 < 4; ++p4) {
        if (p2 == 0 && p3 == 0 && p4 == 0) continue;
        CckModem::base_codeword(p2 * 1.5707963, p3 * 1.5707963, p4 * 1.5707963, b);
        Cplx acc{0.0, 0.0};
        for (int i = 0; i < 8; ++i) acc += a[i] * std::conj(b[i]);
        max_cross = std::max(max_cross, std::abs(acc));
      }
    }
  }
  EXPECT_LT(max_cross, 8.0 * 0.75);
}

class CckRates : public ::testing::TestWithParam<CckRate> {};

TEST_P(CckRates, NoiselessRoundTrip) {
  const CckModem modem(GetParam());
  Rng rng(7);
  const Bits bits = rng.random_bits(cck_bits_per_symbol(GetParam()) * 150);
  EXPECT_EQ(modem.demodulate(modem.modulate(bits)), bits);
}

TEST_P(CckRates, ModerateSnrRoundTrip) {
  const CckModem modem(GetParam());
  Rng rng(8);
  const Bits bits = rng.random_bits(cck_bits_per_symbol(GetParam()) * 200);
  CVec chips = modem.modulate(bits);
  channel::add_awgn_snr(chips, rng, 12.0);
  const std::size_t errors = hamming_distance(modem.demodulate(chips), bits);
  EXPECT_EQ(errors, 0u);
}

INSTANTIATE_TEST_SUITE_P(BothRates, CckRates,
                         ::testing::Values(CckRate::k5_5Mbps, CckRate::k11Mbps));

TEST(Cck, ElevenMbpsNeedsMoreSnrThanFiveFive) {
  // Denser signal set -> worse BER at equal chip SNR.
  Rng rng(9);
  const double snr_db = 5.0;
  std::size_t errors55 = 0;
  std::size_t errors11 = 0;
  std::size_t bits55 = 0;
  std::size_t bits11 = 0;
  for (int p = 0; p < 30; ++p) {
    {
      const CckModem modem(CckRate::k5_5Mbps);
      const Bits bits = rng.random_bits(4 * 100);
      CVec chips = modem.modulate(bits);
      channel::add_awgn_snr(chips, rng, snr_db);
      errors55 += hamming_distance(modem.demodulate(chips), bits);
      bits55 += bits.size();
    }
    {
      const CckModem modem(CckRate::k11Mbps);
      const Bits bits = rng.random_bits(8 * 100);
      CVec chips = modem.modulate(bits);
      channel::add_awgn_snr(chips, rng, snr_db);
      errors11 += hamming_distance(modem.demodulate(chips), bits);
      bits11 += bits.size();
    }
  }
  const double ber55 = static_cast<double>(errors55) / bits55;
  const double ber11 = static_cast<double>(errors11) / bits11;
  EXPECT_LT(ber55, ber11);
}

TEST(Cck, WaveformLayout) {
  const CckModem modem(CckRate::k11Mbps);
  const CVec wave = modem.modulate(Bits(16, 0));
  EXPECT_EQ(wave.size(), (2u + 1u) * 8u);  // reference + 2 symbols
}

TEST(Cck, RejectsRaggedBitCount) {
  const CckModem modem(CckRate::k11Mbps);
  EXPECT_THROW(modem.modulate(Bits(12, 0)), ContractError);
}

}  // namespace
}  // namespace wlan::phy

// Tests for the standards registry — the paper's C1 numbers.
#include <gtest/gtest.h>

#include "core/standards.h"

namespace wlan {
namespace {

TEST(Standards, HeadlineRates) {
  EXPECT_DOUBLE_EQ(standard_info(Standard::k80211).max_rate_mbps, 2.0);
  EXPECT_DOUBLE_EQ(standard_info(Standard::k80211b).max_rate_mbps, 11.0);
  EXPECT_DOUBLE_EQ(standard_info(Standard::k80211a).max_rate_mbps, 54.0);
  EXPECT_DOUBLE_EQ(standard_info(Standard::k80211g).max_rate_mbps, 54.0);
  EXPECT_DOUBLE_EQ(standard_info(Standard::k80211n).max_rate_mbps, 600.0);
}

TEST(Standards, SpectralEfficienciesMatchPaper) {
  EXPECT_NEAR(standard_info(Standard::k80211).spectral_efficiency_bps_hz(), 0.1,
              1e-12);
  EXPECT_NEAR(standard_info(Standard::k80211b).spectral_efficiency_bps_hz(), 0.5,
              1e-12);
  EXPECT_NEAR(standard_info(Standard::k80211a).spectral_efficiency_bps_hz(), 2.7,
              1e-12);
  EXPECT_NEAR(standard_info(Standard::k80211n).spectral_efficiency_bps_hz(), 15.0,
              1e-12);
}

TEST(Standards, FivefoldProgression) {
  // "maintains the historical trend of fivefold increases with each new
  // standard" — check the efficiency ratios are ~5x.
  const double e0 = standard_info(Standard::k80211).spectral_efficiency_bps_hz();
  const double e1 = standard_info(Standard::k80211b).spectral_efficiency_bps_hz();
  const double e2 = standard_info(Standard::k80211a).spectral_efficiency_bps_hz();
  const double e3 = standard_info(Standard::k80211n).spectral_efficiency_bps_hz();
  EXPECT_NEAR(e1 / e0, 5.0, 0.1);
  EXPECT_NEAR(e2 / e1, 5.4, 0.1);
  EXPECT_NEAR(e3 / e2, 5.6, 0.1);
}

TEST(Standards, ChronologicalOrder) {
  const auto all = all_standards();
  ASSERT_EQ(all.size(), 5u);
  for (std::size_t i = 0; i + 1 < all.size(); ++i) {
    EXPECT_LE(all[i].year, all[i + 1].year);
  }
}

TEST(Standards, SupportedRatesAscendAndPeakCorrectly) {
  for (const auto& info : all_standards()) {
    const auto rates = supported_rates_mbps(info.standard);
    ASSERT_FALSE(rates.empty());
    for (std::size_t i = 0; i + 1 < rates.size(); ++i) {
      EXPECT_LE(rates[i], rates[i + 1]);
    }
    EXPECT_DOUBLE_EQ(rates.back(), info.max_rate_mbps);
  }
}

TEST(Standards, OfdmGenerationsShareRateSet) {
  EXPECT_EQ(supported_rates_mbps(Standard::k80211a),
            supported_rates_mbps(Standard::k80211g));
}

}  // namespace
}  // namespace wlan

// Integration tests for the unified link simulators (core).
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "core/link.h"

namespace wlan {
namespace {

TEST(LinkResult, Accessors) {
  LinkResult r;
  r.packets = 10;
  r.packet_errors = 2;
  r.bits = 1000;
  r.bit_errors = 5;
  EXPECT_DOUBLE_EQ(r.per(), 0.2);
  EXPECT_DOUBLE_EQ(r.ber(), 0.005);
  EXPECT_DOUBLE_EQ(r.goodput_mbps(54.0), 54.0 * 0.8);
  const LinkResult empty;
  EXPECT_DOUBLE_EQ(empty.per(), 0.0);
  EXPECT_DOUBLE_EQ(empty.ber(), 0.0);
}

TEST(DsssLink, CleanAtHighSnr) {
  Rng rng(1);
  const LinkResult r =
      run_dsss_link({phy::DsssRate::k2Mbps, true}, 800, 20, 15.0, rng);
  EXPECT_EQ(r.packet_errors, 0u);
  EXPECT_EQ(r.packets, 20u);
}

TEST(DsssLink, BreaksAtVeryLowSnr) {
  Rng rng(2);
  const LinkResult r =
      run_dsss_link({phy::DsssRate::k2Mbps, true}, 800, 20, -15.0, rng);
  EXPECT_GT(r.per(), 0.9);
}

TEST(DsssLink, ProcessingGainUnderInterference) {
  // SIR where the spread system lives and the unspread one dies.
  Rng rng(3);
  const ToneInterference jam{-2.0, 0.21};
  const LinkResult spread = run_dsss_link({phy::DsssRate::k1Mbps, true}, 500,
                                          20, 30.0, rng, jam);
  const LinkResult narrow = run_dsss_link({phy::DsssRate::k1Mbps, false}, 500,
                                          20, 30.0, rng, jam);
  EXPECT_LT(spread.per(), 0.2);
  EXPECT_GT(narrow.per(), 0.8);
}

TEST(DsssLink, FlatRayleighWorseThanAwgn) {
  Rng rng(4);
  const LinkResult awgn = run_dsss_link({phy::DsssRate::k1Mbps, true}, 500, 40,
                                        2.0, rng);
  const LinkResult fading =
      run_dsss_link({phy::DsssRate::k1Mbps, true}, 500, 40, 2.0, rng, {},
                    ChannelSpec::flat_rayleigh());
  EXPECT_GE(fading.ber(), awgn.ber());
}

TEST(CckLink, CleanAtHighSnr) {
  Rng rng(5);
  const LinkResult r = run_cck_link(phy::CckRate::k11Mbps, 800, 20, 15.0, rng);
  EXPECT_EQ(r.packet_errors, 0u);
}

TEST(CckLink, PerOrderedBySnr) {
  Rng rng(6);
  const LinkResult low = run_cck_link(phy::CckRate::k11Mbps, 800, 25, 2.0, rng);
  const LinkResult high = run_cck_link(phy::CckRate::k11Mbps, 800, 25, 10.0, rng);
  EXPECT_GE(low.per(), high.per());
  EXPECT_GT(low.per(), 0.3);
}

TEST(OfdmLink, CleanAtHighSnr) {
  Rng rng(7);
  const LinkResult r = run_ofdm_link(phy::OfdmMcs::k54Mbps, 300, 15, 30.0, rng);
  EXPECT_EQ(r.packet_errors, 0u);
}

TEST(OfdmLink, CollapsesBelowSensitivity) {
  Rng rng(8);
  const LinkResult r = run_ofdm_link(phy::OfdmMcs::k54Mbps, 300, 15, 10.0, rng);
  EXPECT_GT(r.per(), 0.9);
}

TEST(OfdmLink, TdlChannelRaisesRequiredSnr) {
  Rng rng(9);
  const double snr = 22.0;
  const LinkResult awgn = run_ofdm_link(phy::OfdmMcs::k54Mbps, 200, 30, snr, rng);
  const LinkResult tdl = run_ofdm_link(phy::OfdmMcs::k54Mbps, 200, 30, snr, rng,
                                       ChannelSpec::tdl(channel::DelayProfile::kOffice));
  EXPECT_GE(tdl.per(), awgn.per());
}

TEST(HtLink, CleanAtHighSnr2x2) {
  Rng rng(10);
  phy::HtConfig cfg;
  cfg.mcs = 15;  // 64-QAM 5/6, 2 streams
  const LinkResult r = run_ht_link(cfg, 300, 10, 45.0, rng);
  EXPECT_EQ(r.packet_errors, 0u);
}

TEST(HtLink, MoreRxAntennasHelp) {
  Rng rng(11);
  phy::HtConfig two_rx;
  two_rx.mcs = 11;  // 2 streams 16-QAM
  two_rx.n_rx = 2;
  phy::HtConfig three_rx = two_rx;
  three_rx.n_rx = 3;
  const LinkResult r2 = run_ht_link(two_rx, 200, 50, 16.0, rng);
  const LinkResult r3 = run_ht_link(three_rx, 200, 50, 16.0, rng);
  EXPECT_LE(r3.per(), r2.per());
}

TEST(SnrAtDistance, MonotoneDecreasing) {
  channel::PathLossModel pl;
  double prev = 1e9;
  for (const double d : {2.0, 5.0, 10.0, 30.0, 100.0}) {
    const double snr = snr_at_distance_db(pl, d, 17.0, 20e6);
    EXPECT_LT(snr, prev);
    prev = snr;
  }
}

TEST(SnrAtDistance, TypicalIndoorValue) {
  channel::PathLossModel pl;  // 5.2 GHz, breakpoint 5 m
  // At 5 m: 17 dBm - ~60.8 dB + 95 dB noise floor = ~51 dB SNR.
  EXPECT_NEAR(snr_at_distance_db(pl, 5.0, 17.0, 20e6), 51.2, 1.0);
}

TEST(Links, RejectDegenerateRuns) {
  Rng rng(12);
  EXPECT_THROW(run_ofdm_link(phy::OfdmMcs::k6Mbps, 0, 5, 10.0, rng),
               ContractError);
  EXPECT_THROW(run_cck_link(phy::CckRate::k11Mbps, 100, 0, 10.0, rng),
               ContractError);
}

}  // namespace
}  // namespace wlan

// Unit tests for the common substrate: RNG, bits, CRC, units, contracts.
#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "common/bits.h"
#include "common/check.h"
#include "common/crc.h"
#include "common/rng.h"
#include "common/units.h"

namespace wlan {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(11);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum2 += u * u;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformIntBoundsAndCoverage) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(0), ContractError);
}

TEST(Rng, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, GaussianMeanStddev) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(3.0, 2.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, ComplexGaussianVariance) {
  Rng rng(23);
  double power = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) power += std::norm(rng.cgaussian(2.0));
  EXPECT_NEAR(power / n, 2.0, 0.05);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(31);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, RandomBitsAreBinaryAndBalanced) {
  Rng rng(37);
  const Bits b = rng.random_bits(100000);
  std::size_t ones = 0;
  for (const auto bit : b) {
    ASSERT_LE(bit, 1);
    ones += bit;
  }
  EXPECT_NEAR(static_cast<double>(ones) / b.size(), 0.5, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(99);
  Rng forked = a.fork();
  // The fork must not replay the parent's stream.
  Rng b(99);
  b.next_u64();  // parent consumed one value to create the fork
  EXPECT_NE(forked.next_u64(), b.next_u64());
}

TEST(Rng, ForkDiscardsParentCachedGaussian) {
  // Box-Muller produces variates in pairs and caches the second. A
  // fork is a stream boundary: the parent must NOT hand out a variate
  // cached from entropy consumed before the fork, or two generators
  // that reach identical raw state through different gaussian() call
  // counts would diverge.
  Rng with_cache(7);
  with_cache.gaussian();  // caches the pair's second variate
  Rng without_cache(7);
  without_cache.gaussian();
  without_cache.gaussian();  // drains the cache; same raw state now
  with_cache.fork();
  without_cache.fork();
  // Both parents sit at the same raw state with empty caches, so their
  // next gaussians must agree.
  EXPECT_EQ(with_cache.gaussian(), without_cache.gaussian());
}

TEST(Rng, CopyDoesNotInheritCachedGaussian) {
  Rng source(11);
  source.gaussian();  // source now holds a cached variate
  Rng copy = source;
  Rng assigned(1);
  assigned = source;
  // The copies share the source's raw state but start a fresh
  // Box-Muller pair: their first gaussian comes from new draws, not the
  // source's stale cache.
  const double from_source_cache = source.gaussian();
  Rng fresh_copy = source;  // source cache is drained now
  EXPECT_NE(copy.gaussian(), from_source_cache);
  EXPECT_NE(assigned.gaussian(), from_source_cache);
  // A copy of a cache-free generator is an exact clone.
  Rng clone = fresh_copy;
  EXPECT_EQ(clone.next_u64(), fresh_copy.next_u64());
}

TEST(Bits, BytesToBitsLsbFirst) {
  const Bytes bytes = {0x01, 0x80};
  const Bits bits = bytes_to_bits(bytes);
  ASSERT_EQ(bits.size(), 16u);
  EXPECT_EQ(bits[0], 1);  // LSB of 0x01 first
  for (int i = 1; i < 8; ++i) EXPECT_EQ(bits[i], 0);
  for (int i = 8; i < 15; ++i) EXPECT_EQ(bits[i], 0);
  EXPECT_EQ(bits[15], 1);  // MSB of 0x80 last
}

TEST(Bits, RoundTrip) {
  Rng rng(5);
  const Bytes original = rng.random_bytes(257);
  EXPECT_EQ(bits_to_bytes(bytes_to_bits(original)), original);
}

TEST(Bits, BitsToBytesRejectsRaggedInput) {
  const Bits bits(9, 0);
  EXPECT_THROW(bits_to_bytes(bits), ContractError);
}

TEST(Bits, HammingDistance) {
  const Bits a = {0, 1, 1, 0};
  const Bits b = {1, 1, 0, 0};
  EXPECT_EQ(hamming_distance(a, b), 2u);
  EXPECT_EQ(hamming_distance(a, a), 0u);
}

TEST(Bits, HammingDistanceRejectsLengthMismatch) {
  const Bits a(3, 0);
  const Bits b(4, 0);
  EXPECT_THROW(hamming_distance(a, b), ContractError);
}

TEST(Bits, Parity) {
  EXPECT_EQ(parity(Bits{1, 1, 1}), 1);
  EXPECT_EQ(parity(Bits{1, 1}), 0);
  EXPECT_EQ(parity(Bits{}), 0);
}

TEST(Bits, ReverseBits) {
  EXPECT_EQ(reverse_bits(0b001, 3), 0b100u);
  EXPECT_EQ(reverse_bits(0b1101, 4), 0b1011u);
  EXPECT_EQ(reverse_bits(1, 1), 1u);
}

TEST(Crc, Crc32KnownVector) {
  const char* msg = "123456789";
  const std::span<const std::uint8_t> data(
      reinterpret_cast<const std::uint8_t*>(msg), std::strlen(msg));
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Crc, Crc32DetectsSingleBitFlip) {
  Rng rng(3);
  Bytes data = rng.random_bytes(64);
  const std::uint32_t original = crc32(data);
  data[10] ^= 0x04;
  EXPECT_NE(crc32(data), original);
}

TEST(Crc, Crc16DetectsCorruption) {
  Rng rng(4);
  Bytes data = rng.random_bytes(6);
  const std::uint16_t original = crc16_ccitt(data);
  data[0] ^= 0x01;
  EXPECT_NE(crc16_ccitt(data), original);
}

TEST(Units, DbConversionsRoundTrip) {
  EXPECT_NEAR(db_to_lin(3.0), 1.995, 0.01);
  EXPECT_NEAR(lin_to_db(100.0), 20.0, 1e-12);
  EXPECT_NEAR(lin_to_db(db_to_lin(7.3)), 7.3, 1e-12);
}

TEST(Units, DbmWattConversions) {
  EXPECT_NEAR(dbm_to_watt(30.0), 1.0, 1e-12);
  EXPECT_NEAR(dbm_to_watt(0.0), 1e-3, 1e-15);
  EXPECT_NEAR(watt_to_dbm(0.1), 20.0, 1e-12);
}

TEST(Units, ThermalNoise20MHz) {
  // -174 + 10log10(20e6) = -101 dBm.
  EXPECT_NEAR(thermal_noise_dbm(20e6), -101.0, 0.05);
  EXPECT_NEAR(thermal_noise_dbm(20e6, 6.0), -95.0, 0.05);
}

TEST(Check, ThrowsWithMessage) {
  EXPECT_THROW(check(false, "boom"), ContractError);
  try {
    check(false, "boom");
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
}

TEST(Check, PassesOnTrue) { EXPECT_NO_THROW(check(true, "fine")); }

}  // namespace
}  // namespace wlan

// Tests for the hierarchical span profiler (obs/perf.h) and the
// parallel-engine telemetry (par/pool.h): self/child time attribution,
// folded-stack round trips, cross-thread-count determinism of merged
// profiles, pool counter reconciliation, and per-span allocation
// attribution via the test alloc hook.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "obs/analyze/chrome_trace.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/perf.h"
#include "obs/timer.h"
#include "par/montecarlo.h"
#include "par/pool.h"
#include "support/alloc_hook.h"

namespace wlan {
namespace {

using obs::perf::ScopedSpan;
using obs::perf::SpanProfile;
using obs::perf::SpanStats;

// Deterministic tick source: every call advances this thread's clock by
// 100 ns. Span durations are tick differences, so a span's time is 100x
// the number of now_ns() calls it encloses — a pure function of the
// span structure, independent of which thread runs it.
thread_local std::uint64_t t_tick = 0;
std::uint64_t fake_tick() { return t_tick += 100; }

std::uint64_t thread_allocs() {
  return static_cast<std::uint64_t>(testsupport::thread_allocation_count());
}

// Restores the global profiler state no matter how a test exits.
class PerfGuard {
 public:
  PerfGuard() = default;
  ~PerfGuard() {
    obs::perf::disable_span_profiling();
    obs::perf::set_tick_source_for_testing(nullptr);
    obs::perf::set_alloc_source(nullptr);
    obs::disable_kernel_profiling();
    par::set_telemetry_enabled(false);
  }
};

TEST(ScopedSpan, DisabledRecordsNothing) {
  PerfGuard guard;
  obs::perf::disable_span_profiling();
  { const ScopedSpan span("nothing"); }
  EXPECT_FALSE(obs::perf::span_profiling_enabled());
  EXPECT_EQ(obs::perf::current_path(), "");
}

TEST(ScopedSpan, NestingSplitsSelfAndChildTime) {
  PerfGuard guard;
  obs::perf::set_tick_source_for_testing(&fake_tick);
  SpanProfile profile;
  obs::perf::enable_span_profiling(profile);
  {
    const ScopedSpan a("a");  // tick 1 .. tick 6
    { const ScopedSpan b("b"); }  // ticks 2..3
    { const ScopedSpan b("b"); }  // ticks 4..5
  }
  obs::perf::disable_span_profiling();

  const auto rows = profile.spans();
  ASSERT_EQ(rows.count("a"), 1u);
  ASSERT_EQ(rows.count("a;b"), 1u);
  const SpanStats& a = rows.at("a");
  const SpanStats& b = rows.at("a;b");
  EXPECT_EQ(a.calls, 1u);
  EXPECT_EQ(a.total_ns, 500u);  // 5 intervening tick steps
  EXPECT_EQ(b.calls, 2u);
  EXPECT_EQ(b.total_ns, 200u);
  EXPECT_EQ(a.child_ns, 200u);
  EXPECT_EQ(a.self_ns(), 300u);
  // Children tile the parent exactly: self + child == total.
  EXPECT_EQ(a.self_ns() + a.child_ns, a.total_ns);
}

TEST(ScopedSpan, CurrentPathTracksOpenStack) {
  PerfGuard guard;
  SpanProfile profile;
  obs::perf::enable_span_profiling(profile);
  EXPECT_EQ(obs::perf::current_path(), "");
  {
    const ScopedSpan a("outer");
    EXPECT_EQ(obs::perf::current_path(), "outer");
    {
      const ScopedSpan b("inner");
      EXPECT_EQ(obs::perf::current_path(), "outer;inner");
    }
    EXPECT_EQ(obs::perf::current_path(), "outer");
  }
  EXPECT_EQ(obs::perf::current_path(), "");
  obs::perf::disable_span_profiling();
}

TEST(ScopedSpan, FlushKeepsArmingAndAccumulates) {
  PerfGuard guard;
  obs::perf::set_tick_source_for_testing(&fake_tick);
  SpanProfile profile;
  obs::perf::enable_span_profiling(profile);
  { const ScopedSpan s("s"); }
  obs::perf::flush_span_profiling();
  EXPECT_EQ(profile.spans().at("s").calls, 1u);
  EXPECT_TRUE(obs::perf::span_profiling_enabled());
  { const ScopedSpan s("s"); }
  obs::perf::disable_span_profiling();
  EXPECT_EQ(profile.spans().at("s").calls, 2u);
}

TEST(SpanProfile, RootTotalSumsDepthZeroRowsOnly) {
  SpanProfile profile;
  SpanStats s;
  s.calls = 1;
  s.total_ns = 300;
  profile.add("a", s);
  s.total_ns = 200;
  profile.add("b", s);
  s.total_ns = 150;
  profile.add("a;c", s);  // depth 1: excluded
  EXPECT_EQ(profile.root_total_ns(), 500u);
}

TEST(SpanProfile, FoldedRoundTrip) {
  SpanProfile profile;
  SpanStats s;
  s.calls = 2;
  s.total_ns = 700;
  s.child_ns = 250;
  profile.add("bench;link.ofdm", s);
  SpanStats leaf;
  leaf.calls = 8;
  leaf.total_ns = 250;
  profile.add("bench;link.ofdm;fft", leaf);

  std::stringstream ss(profile.folded());
  const auto lines = obs::perf::parse_folded(ss);
  ASSERT_EQ(lines.size(), 2u);
  // Sorted path order.
  EXPECT_EQ(lines[0].path, "bench;link.ofdm");
  EXPECT_EQ(lines[0].self_ns, 450u);
  EXPECT_EQ(lines[1].path, "bench;link.ofdm;fft");
  EXPECT_EQ(lines[1].self_ns, 250u);
}

TEST(SpanProfile, ParseFoldedRejectsMalformedLines) {
  std::stringstream no_space("justapath\n");
  EXPECT_THROW(obs::perf::parse_folded(no_space), ContractError);
  std::stringstream bad_count("a;b not_a_number\n");
  EXPECT_THROW(obs::perf::parse_folded(bad_count), ContractError);
  std::stringstream empty_path(" 123\n");
  EXPECT_THROW(obs::perf::parse_folded(empty_path), ContractError);
  std::stringstream ok("a;b 123\n\na 7\n");
  EXPECT_EQ(obs::perf::parse_folded(ok).size(), 2u);
}

// The cross-thread-count determinism contract: span durations under the
// injected per-thread tick depend only on the span structure inside
// each chunk, so the merged profile — and a registry snapshot published
// from it — is bitwise identical for any --jobs.
TEST(SpanProfile, MergedProfileIdenticalAcrossJobs) {
  PerfGuard guard;
  obs::perf::set_tick_source_for_testing(&fake_tick);

  const auto run = [](unsigned jobs) {
    SpanProfile profile;
    obs::perf::enable_span_profiling(profile);
    par::SweepOptions opt;
    opt.jobs = jobs;
    opt.chunk = 4;
    const double sum = par::montecarlo<double>(
        64, 0, opt,
        [](std::uint64_t, std::size_t, Rng& rng, double& acc) {
          const ScopedSpan span("trial");
          acc += rng.uniform();
        },
        [](double& acc, const double& part) { acc += part; });
    obs::perf::disable_span_profiling();
    obs::Registry registry;
    profile.publish(registry);
    return std::make_pair(sum, registry.snapshot_json());
  };

  const auto serial = run(1);
  const auto parallel = run(8);
  EXPECT_EQ(serial.first, parallel.first);       // MC results bitwise equal
  EXPECT_EQ(serial.second, parallel.second);     // profile snapshots too

  const obs::JsonValue doc = obs::JsonValue::parse(serial.second);
  (void)doc;  // snapshot parses as JSON
}

// Worker chunk spans graft under the caller's open span path captured
// before fan-out.
TEST(SpanProfile, ChunkSpansGraftUnderCallerPath) {
  PerfGuard guard;
  SpanProfile profile;
  obs::perf::enable_span_profiling(profile);
  {
    const ScopedSpan outer("outer");
    par::SweepOptions opt;
    opt.jobs = 2;
    opt.chunk = 4;
    par::montecarlo<double>(
        16, 0, opt,
        [](std::uint64_t, std::size_t, Rng&, double& acc) {
          const ScopedSpan span("trial");
          acc += 1.0;
        },
        [](double& acc, const double& part) { acc += part; });
  }
  obs::perf::disable_span_profiling();

  const auto rows = profile.spans();
  ASSERT_EQ(rows.count("outer"), 1u);
  ASSERT_EQ(rows.count("outer;mc.chunk"), 1u);
  ASSERT_EQ(rows.count("outer;mc.chunk;trial"), 1u);
  EXPECT_EQ(rows.at("outer;mc.chunk").calls, 4u);
  EXPECT_EQ(rows.at("outer;mc.chunk;trial").calls, 16u);
}

// par::map opens "mc.map" spans and counts one chunk per item.
TEST(PoolTelemetry, CountersReconcileWithChunkStats) {
  PerfGuard guard;
  par::set_telemetry_enabled(true);
  par::reset_chunk_stats();
  par::default_pool().reset_telemetry();

  par::SweepOptions opt;
  opt.chunk = 5;
  const double total = par::montecarlo<double>(
      40, 0, opt,
      [](std::uint64_t, std::size_t, Rng&, double& acc) { acc += 1.0; },
      [](double& acc, const double& part) { acc += part; });
  EXPECT_DOUBLE_EQ(total, 40.0);

  const par::ChunkStats chunks = par::chunk_stats();
  EXPECT_EQ(chunks.chunks, 8u);  // 40 trials / 5 per chunk
  EXPECT_GE(chunks.total_ns, chunks.max_ns);
  EXPECT_GT(chunks.max_ns, 0u);

  // Every chunk ran as exactly one pool task (parallel_for chunk == 1),
  // on a worker lane or the external-caller lane.
  const par::PoolTelemetry pool = par::default_pool().telemetry();
  EXPECT_EQ(pool.lanes.size(), par::default_pool().size());
  EXPECT_EQ(pool.totals().tasks, 8u);
  EXPECT_GT(pool.totals().busy_ns, 0u);
  par::set_telemetry_enabled(false);
}

TEST(PoolTelemetry, UtilizationAndImbalanceMath) {
  par::PoolTelemetry t;
  EXPECT_EQ(t.utilization(1.0), 0.0);
  EXPECT_EQ(t.imbalance(), 0.0);
  t.lanes.resize(2);
  t.lanes[0].busy_ns = 1'000'000'000;  // 1 s
  t.lanes[1].busy_ns = 500'000'000;    // 0.5 s
  // 1.5 busy-seconds over 2 lanes x 1 s wall.
  EXPECT_NEAR(t.utilization(1.0), 0.75, 1e-12);
  EXPECT_EQ(t.utilization(0.0), 0.0);
  // max / mean = 1.0 / 0.75.
  EXPECT_NEAR(t.imbalance(), 4.0 / 3.0, 1e-12);
  EXPECT_EQ(t.totals().busy_ns, 1'500'000'000u);
}

TEST(PoolTelemetry, PublishCreatesParInstruments) {
  par::PoolTelemetry t;
  t.lanes.resize(2);
  t.lanes[0].tasks = 3;
  t.lanes[1].tasks = 5;
  t.lanes[0].busy_ns = 400;
  par::ChunkStats chunks{8, 1000, 300};
  obs::Registry registry;
  par::publish_telemetry(registry, t, chunks, 2.0);
  const std::string json = registry.snapshot_json();
  EXPECT_NE(json.find("par.tasks"), std::string::npos);
  EXPECT_NE(json.find("par.utilization"), std::string::npos);
  EXPECT_NE(json.find("par.imbalance"), std::string::npos);
  EXPECT_NE(json.find("par.chunk_max_s"), std::string::npos);
  const obs::JsonValue doc = obs::JsonValue::parse(json);
  (void)doc;
}

// Per-span allocation attribution through the injected per-thread
// counter: the inner span's allocations roll up into the outer span's
// child_allocs, leaving its self_allocs at zero.
TEST(SpanAllocs, InnerAllocationsAttributeToInnerSpan) {
  PerfGuard guard;
  // Warm pass creates the collector nodes so the measured pass is pure.
  SpanProfile warm;
  obs::perf::enable_span_profiling(warm);
  {
    const ScopedSpan o("o");
    { const ScopedSpan i("i"); }
  }
  SpanProfile measured;
  obs::perf::enable_span_profiling(measured);  // drains into warm, re-arms
  obs::perf::set_alloc_source(&thread_allocs);
  {
    const ScopedSpan o("o");
    {
      const ScopedSpan i("i");
      std::vector<int> v(64, 1);
      ASSERT_EQ(v[63], 1);
    }
  }
  obs::perf::disable_span_profiling();
  obs::perf::set_alloc_source(nullptr);

  const auto rows = measured.spans();
  EXPECT_GE(rows.at("o;i").allocs, 1u);
  EXPECT_EQ(rows.at("o").child_allocs, rows.at("o;i").allocs);
  EXPECT_EQ(rows.at("o").self_allocs(), 0u);
}

// Warm Monte-Carlo chunks are allocation-free: after a warm-up sweep
// has built every collector node and workspace, a second identical
// sweep records zero allocations inside every mc.chunk span.
TEST(SpanAllocs, WarmMonteCarloChunksDoNotAllocate) {
  PerfGuard guard;
  obs::perf::set_alloc_source(&thread_allocs);
  const auto sweep_once = [](SpanProfile& profile) {
    obs::perf::enable_span_profiling(profile);
    par::SweepOptions opt;
    opt.chunk = 8;
    par::montecarlo<double>(
        64, 0, opt,
        [](std::uint64_t, std::size_t, Rng& rng, double& acc) {
          acc += rng.uniform();
        },
        [](double& acc, const double& part) { acc += part; });
  };
  SpanProfile warm;
  sweep_once(warm);
  SpanProfile measured;
  sweep_once(measured);  // re-arm drains the warm pass first
  obs::perf::disable_span_profiling();
  obs::perf::set_alloc_source(nullptr);

  bool saw_chunk = false;
  for (const auto& [path, stats] : measured.spans()) {
    if (path.find("mc.chunk") == std::string::npos) continue;
    saw_chunk = true;
    EXPECT_EQ(stats.allocs, 0u) << path;
  }
  EXPECT_TRUE(saw_chunk);
}

// The rewired kernel-timer front end: histograms live in the shared
// PerfTls block, and ScopedTimer still records through them.
TEST(KernelProfiling, TimerRecordsThroughTlsSlots) {
  PerfGuard guard;
  EXPECT_EQ(obs::kernel_histogram(obs::Kernel::kFft), nullptr);
  obs::Registry registry;
  obs::enable_kernel_profiling(registry);
  ASSERT_NE(obs::kernel_histogram(obs::Kernel::kFft), nullptr);
  { const obs::ScopedTimer t(obs::kernel_histogram(obs::Kernel::kFft)); }
  obs::disable_kernel_profiling();
  EXPECT_EQ(obs::kernel_histogram(obs::Kernel::kFft), nullptr);
  const obs::Histogram* h = registry.find_histogram("kernel.fft");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1u);
}

// Perfetto appendix: the span tree lands as complete slices on the
// synthetic profiler process and the document stays valid JSON.
TEST(ChromeTrace, AppendSpanProfileEmitsSlices) {
  SpanProfile profile;
  SpanStats s;
  s.calls = 1;
  s.total_ns = 1000;
  s.child_ns = 400;
  profile.add("bench", s);
  SpanStats child;
  child.calls = 2;
  child.total_ns = 400;
  profile.add("bench;fft", child);

  std::stringstream ss;
  {
    obs::ChromeTraceSink sink(ss);
    obs::append_span_profile(sink, profile);
    sink.close();
    EXPECT_EQ(sink.dropped(), 0u);
  }
  const obs::JsonValue doc = obs::JsonValue::parse(ss.str());
  const obs::JsonValue& events = doc.at("traceEvents");
  bool saw_meta = false, saw_bench = false, saw_fft = false;
  for (const auto& e : events.items()) {
    const obs::JsonValue* name = e.find("name");
    if (name == nullptr || !name->is_string()) continue;
    if (name->as_string() == "process_name") saw_meta = true;
    if (name->as_string() == "bench") saw_bench = true;
    if (name->as_string() == "fft") saw_fft = true;
  }
  EXPECT_TRUE(saw_meta);
  EXPECT_TRUE(saw_bench);
  EXPECT_TRUE(saw_fft);
}

}  // namespace
}  // namespace wlan

// Tests for spectral estimation and the waveform spectral signatures.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/check.h"
#include "common/rng.h"
#include "dsp/spectrum.h"
#include "phy/cck.h"
#include "phy/dsss.h"
#include "phy/ofdm.h"

namespace wlan::dsp {
namespace {

TEST(Welch, ToneConcentratesInItsBin) {
  const std::size_t n = 64;
  CVec x(4096);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double arg = 2.0 * std::numbers::pi * 8.0 * static_cast<double>(i) /
                       static_cast<double>(n);
    x[i] = {std::cos(arg), std::sin(arg)};
  }
  const RVec psd = welch_psd(x, n);
  std::size_t peak = 0;
  for (std::size_t k = 1; k < n; ++k) {
    if (psd[k] > psd[peak]) peak = k;
  }
  EXPECT_EQ(peak, 8u);
  // Most power within the peak and its window-leakage neighbors.
  const double local = psd[7] + psd[8] + psd[9];
  double total = 0.0;
  for (const double v : psd) total += v;
  EXPECT_GT(local / total, 0.9);
}

TEST(Welch, WhiteNoiseIsFlat) {
  Rng rng(1);
  CVec x(65536);
  for (auto& v : x) v = rng.cgaussian(1.0);
  const RVec psd = welch_psd(x, 64);
  double mn = 1e300;
  double mx = 0.0;
  for (const double v : psd) {
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  EXPECT_LT(mx / mn, 1.6);  // flat within +-2 dB over many averages
}

TEST(Welch, InputValidation) {
  CVec x(100, Cplx{1.0, 0.0});
  EXPECT_THROW(welch_psd(x, 48), wlan::ContractError);
  EXPECT_THROW(welch_psd(CVec(10, Cplx{}), 64), wlan::ContractError);
}

TEST(FftShiftTest, SwapsHalves) {
  const RVec psd = {1, 2, 3, 4};
  const RVec shifted = fft_shift(psd);
  EXPECT_EQ(shifted, (RVec{3, 4, 1, 2}));
}

TEST(Band, FullBandIsEverything) {
  Rng rng(2);
  CVec x(8192);
  for (auto& v : x) v = rng.cgaussian(1.0);
  const RVec psd = welch_psd(x, 64);
  EXPECT_NEAR(power_within_band(psd, 1.0), 1.0, 0.02);
}

TEST(Band, NarrowbandSignalOccupiesLittle) {
  CVec x(8192);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double arg = 2.0 * std::numbers::pi * 2.0 * static_cast<double>(i) / 64.0;
    x[i] = {std::cos(arg), std::sin(arg)};
  }
  const RVec psd = welch_psd(x, 64);
  EXPECT_LT(occupied_bandwidth_fraction(psd, 0.99), 0.25);
}

TEST(Similarity, IdenticalSpectraScoreOne) {
  Rng rng(3);
  CVec x(8192);
  for (auto& v : x) v = rng.cgaussian(1.0);
  const RVec psd = welch_psd(x, 64);
  EXPECT_NEAR(spectral_similarity(psd, psd), 1.0, 1e-12);
}

TEST(Similarity, DisjointSpectraScoreLow) {
  RVec a(64, 0.0);
  RVec b(64, 0.0);
  a[3] = 1.0;
  b[40] = 1.0;
  EXPECT_NEAR(spectral_similarity(a, b), 0.0, 1e-12);
}

TEST(Signatures, CckLooksLikeBarkerDsss) {
  // The paper's C3 premise: CCK was designed to keep "a DSSS like
  // signature". Both run 11 Mchip/s with similar chip spectra, so their
  // PSDs should be highly similar — far more similar than either is to
  // OFDM's.
  Rng rng(4);
  const phy::DsssModem dsss({phy::DsssRate::k2Mbps, true});
  const phy::CckModem cck(phy::CckRate::k11Mbps);
  const phy::OfdmPhy ofdm(phy::OfdmMcs::k54Mbps);

  const CVec w_dsss = dsss.modulate(rng.random_bits(8000));
  const CVec w_cck = cck.modulate(rng.random_bits(8000));
  CVec w_ofdm;
  for (int p = 0; p < 4; ++p) {
    const CVec pkt = ofdm.transmit(rng.random_bytes(500));
    w_ofdm.insert(w_ofdm.end(), pkt.begin(), pkt.end());
  }
  const RVec p_dsss = welch_psd(w_dsss, 64);
  const RVec p_cck = welch_psd(w_cck, 64);
  const RVec p_ofdm = welch_psd(w_ofdm, 64);

  const double cck_vs_dsss = spectral_similarity(p_cck, p_dsss);
  const double cck_vs_ofdm = spectral_similarity(p_cck, p_ofdm);
  EXPECT_GT(cck_vs_dsss, 0.97);
  EXPECT_GT(cck_vs_dsss, cck_vs_ofdm + 0.01);
}

TEST(Signatures, OfdmOccupiesMostOfItsChannel) {
  // 52 used tones of 64: ~81% of the sampled band.
  Rng rng(5);
  const phy::OfdmPhy ofdm(phy::OfdmMcs::k36Mbps);
  CVec w;
  for (int p = 0; p < 4; ++p) {
    const CVec pkt = ofdm.transmit(rng.random_bytes(500));
    w.insert(w.end(), pkt.begin(), pkt.end());
  }
  const RVec psd = welch_psd(w, 64);
  const double occ = occupied_bandwidth_fraction(psd, 0.99);
  EXPECT_GT(occ, 0.7);
  EXPECT_LT(occ, 0.95);
}

}  // namespace
}  // namespace wlan::dsp

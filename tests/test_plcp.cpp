// Tests for PLCP framing: 802.11a SIGNAL field and 802.11b preamble/header.
#include <gtest/gtest.h>

#include "channel/awgn.h"
#include "channel/fading.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/units.h"
#include "dsp/ops.h"
#include "phy/plcp.h"

namespace wlan::phy {
namespace {

class SignalFieldAllMcs : public ::testing::TestWithParam<OfdmMcs> {};

TEST_P(SignalFieldAllMcs, EncodeDecodeRoundTrip) {
  for (const std::size_t len : {1u, 14u, 1000u, 4095u}) {
    const Bits bits = encode_signal_field(GetParam(), len);
    ASSERT_EQ(bits.size(), 24u);
    const auto decoded = decode_signal_field(bits);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->mcs, GetParam());
    EXPECT_EQ(decoded->length_bytes, len);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMcs, SignalFieldAllMcs,
                         ::testing::ValuesIn(kAllOfdmMcs));

TEST(SignalField, ParityDetectsSingleBitError) {
  Bits bits = encode_signal_field(OfdmMcs::k24Mbps, 100);
  bits[7] ^= 1;
  EXPECT_FALSE(decode_signal_field(bits).has_value());
}

TEST(SignalField, TailBitsAreZero) {
  const Bits bits = encode_signal_field(OfdmMcs::k6Mbps, 1);
  for (std::size_t i = 18; i < 24; ++i) EXPECT_EQ(bits[i], 0);
}

TEST(SignalField, RejectsBadLength) {
  EXPECT_THROW(encode_signal_field(OfdmMcs::k6Mbps, 0), ContractError);
  EXPECT_THROW(encode_signal_field(OfdmMcs::k6Mbps, 4096), ContractError);
}

class OfdmPpduAllMcs : public ::testing::TestWithParam<OfdmMcs> {};

TEST_P(OfdmPpduAllMcs, SelfDescribingReceive) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1);
  const Bytes psdu = rng.random_bytes(300);
  CVec wave = ofdm_transmit_ppdu(GetParam(), psdu);
  const double nv = dsp::mean_power(wave) / db_to_lin(30.0);
  channel::add_awgn(wave, rng, nv);
  const auto decoded = ofdm_receive_ppdu(wave, nv);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, psdu);
}

INSTANTIATE_TEST_SUITE_P(AllMcs, OfdmPpduAllMcs,
                         ::testing::ValuesIn(kAllOfdmMcs));

TEST(OfdmPpdu, WorksThroughMultipath) {
  Rng rng(7);
  const Bytes psdu = rng.random_bytes(200);
  const CVec tx = ofdm_transmit_ppdu(OfdmMcs::k24Mbps, psdu);
  const channel::Tdl tdl =
      channel::make_tdl(rng, channel::DelayProfile::kResidential, 20e6);
  CVec rx = tdl.apply(tx);
  const double nv = dsp::mean_power(tx) / db_to_lin(35.0);
  channel::add_awgn(rx, rng, nv);
  rx.resize(tx.size());
  const auto decoded = ofdm_receive_ppdu(rx, nv);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, psdu);
}

TEST(OfdmPpdu, GarbageDoesNotDecode) {
  Rng rng(8);
  CVec noise(1000);
  for (auto& v : noise) v = rng.cgaussian(1.0);
  EXPECT_FALSE(ofdm_receive_ppdu(noise, 1.0).has_value());
}

TEST(OfdmPpdu, SignalSymbolAddsOneSymbolOfAirtime) {
  Rng rng(9);
  const Bytes psdu = rng.random_bytes(100);
  const OfdmPhy phy(OfdmMcs::k12Mbps);
  const CVec plain = phy.transmit(psdu);
  const CVec framed = ofdm_transmit_ppdu(OfdmMcs::k12Mbps, psdu);
  EXPECT_EQ(framed.size(), plain.size() + OfdmPhy::kSymbolLen);
}

TEST(PlcpHeader, RoundTripAllRates) {
  for (const HrRate rate : {HrRate::k1Mbps, HrRate::k2Mbps, HrRate::k5_5Mbps,
                            HrRate::k11Mbps}) {
    for (const std::size_t bytes : {1u, 13u, 100u, 1500u, 2312u}) {
      const Bits header = encode_plcp_header(rate, bytes);
      ASSERT_EQ(header.size(), 48u);
      const auto decoded = decode_plcp_header(header);
      ASSERT_TRUE(decoded.has_value())
          << "rate " << static_cast<int>(rate) << " bytes " << bytes;
      EXPECT_EQ(decoded->rate, rate);
      EXPECT_EQ(decoded->length_bytes, bytes);
    }
  }
}

TEST(PlcpHeader, CrcDetectsCorruption) {
  Bits header = encode_plcp_header(HrRate::k11Mbps, 500);
  header[3] ^= 1;
  EXPECT_FALSE(decode_plcp_header(header).has_value());
}

class HrPpduRates : public ::testing::TestWithParam<CckRate> {};

TEST_P(HrPpduRates, SelfDescribingReceive) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 21);
  for (const std::size_t bytes : {13u, 100u, 1500u}) {
    const Bytes psdu = rng.random_bytes(bytes);
    CVec wave = hr_transmit_ppdu(GetParam(), psdu);
    channel::add_awgn_snr(wave, rng, 15.0);
    const auto decoded = hr_receive_ppdu(wave);
    ASSERT_TRUE(decoded.has_value()) << "bytes " << bytes;
    EXPECT_EQ(*decoded, psdu);
  }
}

INSTANTIATE_TEST_SUITE_P(BothRates, HrPpduRates,
                         ::testing::Values(CckRate::k5_5Mbps, CckRate::k11Mbps));

TEST(HrPpdu, HeaderIsMoreRobustThanPayload) {
  // The PLCP header rides at 1 Mbps Barker: at an SNR where CCK-11
  // payload bits fail, the header should still parse (or the PPDU is
  // reported unusable rather than mis-parsed).
  Rng rng(22);
  int header_ok = 0;
  int payload_ok = 0;
  for (int t = 0; t < 20; ++t) {
    const Bytes psdu = rng.random_bytes(200);
    CVec wave = hr_transmit_ppdu(CckRate::k11Mbps, psdu);
    channel::add_awgn_snr(wave, rng, 3.0);
    const auto decoded = hr_receive_ppdu(wave);
    if (decoded.has_value()) {
      ++header_ok;
      if (*decoded == psdu) ++payload_ok;
    }
  }
  EXPECT_GT(header_ok, 15);
  EXPECT_LT(payload_ok, header_ok);
}

TEST(HrPpdu, TooShortWaveformRejected) {
  const CVec wave(100, Cplx{1.0, 0.0});
  EXPECT_FALSE(hr_receive_ppdu(wave).has_value());
}

}  // namespace
}  // namespace wlan::phy

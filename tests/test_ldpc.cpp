// Tests for the LDPC code: construction, encoding, min-sum decoding.
#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/check.h"
#include "common/rng.h"
#include "phy/convolutional.h"
#include "phy/ldpc.h"

namespace wlan::phy {
namespace {

TEST(Ldpc, BasicDimensions) {
  const LdpcCode code(648, 324, 1);
  EXPECT_EQ(code.block_length(), 648u);
  EXPECT_EQ(code.info_length(), 324u);
  EXPECT_DOUBLE_EQ(code.rate(), 0.5);
}

TEST(Ldpc, RejectsInfeasibleSizes) {
  EXPECT_THROW(LdpcCode(100, 100, 1), ContractError);
  EXPECT_THROW(LdpcCode(100, 0, 1), ContractError);
  EXPECT_THROW(LdpcCode(10, 9, 1, 3), ContractError);  // wc > m
}

TEST(Ldpc, DeterministicForSeed) {
  const LdpcCode a(324, 162, 7);
  const LdpcCode b(324, 162, 7);
  Rng rng(1);
  const Bits info = rng.random_bits(162);
  EXPECT_EQ(a.encode(info), b.encode(info));
}

class LdpcRates : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(LdpcRates, EncodedWordsSatisfyParity) {
  const auto [n, k] = GetParam();
  const LdpcCode code(n, k, 3);
  Rng rng(2);
  for (int trial = 0; trial < 5; ++trial) {
    const Bits info = rng.random_bits(k);
    const Bits cw = code.encode(info);
    ASSERT_EQ(cw.size(), n);
    EXPECT_TRUE(code.satisfies_parity(cw));
  }
}

TEST_P(LdpcRates, NoiselessDecodeRecoversInfo) {
  const auto [n, k] = GetParam();
  const LdpcCode code(n, k, 4);
  Rng rng(3);
  const Bits info = rng.random_bits(k);
  const Bits cw = code.encode(info);
  RVec llrs(n);
  for (std::size_t i = 0; i < n; ++i) llrs[i] = cw[i] ? -8.0 : 8.0;
  const auto result = code.decode(llrs);
  EXPECT_TRUE(result.parity_ok);
  EXPECT_EQ(result.info, info);
  EXPECT_LE(result.iterations, 2);
}

INSTANTIATE_TEST_SUITE_P(
    BlockAndRate, LdpcRates,
    ::testing::Values(std::pair<std::size_t, std::size_t>{648, 324},
                      std::pair<std::size_t, std::size_t>{648, 432},
                      std::pair<std::size_t, std::size_t>{648, 486},
                      std::pair<std::size_t, std::size_t>{648, 540},
                      std::pair<std::size_t, std::size_t>{1296, 648}));

TEST(Ldpc, Linearity) {
  // The sum (XOR) of two codewords is a codeword.
  const LdpcCode code(324, 162, 5);
  Rng rng(4);
  const Bits a = rng.random_bits(162);
  const Bits b = rng.random_bits(162);
  const Bits ca = code.encode(a);
  const Bits cb = code.encode(b);
  Bits sum(324);
  for (std::size_t i = 0; i < 324; ++i) sum[i] = ca[i] ^ cb[i];
  EXPECT_TRUE(code.satisfies_parity(sum));
}

TEST(Ldpc, AllZeroIsACodeword) {
  const LdpcCode code(324, 162, 6);
  const Bits zero_cw = code.encode(Bits(162, 0));
  for (const auto b : zero_cw) EXPECT_EQ(b, 0);
  EXPECT_TRUE(code.satisfies_parity(zero_cw));
}

TEST(Ldpc, CorrectsErrorsAtModerateSnr) {
  // BPSK over AWGN at Eb/N0 ~ 3 dB, rate 1/2: min-sum must fix nearly all
  // blocks while an uncoded system would see many bit errors.
  const LdpcCode code(648, 324, 8);
  Rng rng(5);
  const double ebn0 = 2.0;         // linear, ~3 dB
  const double es = ebn0 * 0.5;    // rate 1/2
  const double sigma = std::sqrt(1.0 / (2.0 * es));
  int block_failures = 0;
  const int blocks = 30;
  for (int t = 0; t < blocks; ++t) {
    const Bits info = rng.random_bits(324);
    const Bits cw = code.encode(info);
    RVec llrs(648);
    for (std::size_t i = 0; i < 648; ++i) {
      const double tx = cw[i] ? -1.0 : 1.0;
      const double rx = tx + sigma * rng.gaussian();
      llrs[i] = 2.0 * rx / (sigma * sigma);
    }
    const auto result = code.decode(llrs, 50);
    if (result.info != info) ++block_failures;
  }
  EXPECT_LE(block_failures, 2) << "LDPC failing at a comfortable SNR";
}

TEST(Ldpc, ReportsFailureAtHopelessSnr) {
  const LdpcCode code(324, 162, 9);
  Rng rng(6);
  const double sigma = 3.0;  // ~ -9.5 dB Es/N0: decoding cannot succeed
  int reported_failures = 0;
  for (int t = 0; t < 10; ++t) {
    const Bits info = rng.random_bits(162);
    const Bits cw = code.encode(info);
    RVec llrs(324);
    for (std::size_t i = 0; i < 324; ++i) {
      const double tx = cw[i] ? -1.0 : 1.0;
      llrs[i] = 2.0 * (tx + sigma * rng.gaussian()) / (sigma * sigma);
    }
    if (!code.decode(llrs, 30).parity_ok) ++reported_failures;
  }
  EXPECT_GE(reported_failures, 8);
}

TEST(Ldpc, ParityFlagDetectsResidualErrors) {
  // Across many noisy blocks, whenever parity_ok is true the info bits
  // should (almost) always be correct — the flag is a reliable CRC proxy.
  const LdpcCode code(324, 162, 10);
  Rng rng(7);
  const double sigma = 0.9;
  int ok_and_wrong = 0;
  for (int t = 0; t < 40; ++t) {
    const Bits info = rng.random_bits(162);
    const Bits cw = code.encode(info);
    RVec llrs(324);
    for (std::size_t i = 0; i < 324; ++i) {
      const double tx = cw[i] ? -1.0 : 1.0;
      llrs[i] = 2.0 * (tx + sigma * rng.gaussian()) / (sigma * sigma);
    }
    const auto result = code.decode(llrs, 40);
    if (result.parity_ok && result.info != info) ++ok_and_wrong;
  }
  EXPECT_LE(ok_and_wrong, 1);
}

TEST(Ldpc, OutperformsConvolutionalAtSameRate) {
  // The C7 claim in miniature: past its waterfall (~2 dB Eb/N0 for a
  // (3,6) n=648 min-sum code) the LDPC block code must leave fewer bit
  // errors than the K=7 convolutional code of the same rate, which still
  // has a measurable BER there.
  Rng rng(8);
  const LdpcCode code(648, 324, 11);
  const double sigma = 0.75;  // Eb/N0 = 1/sigma^2 ~ 2.5 dB
  std::size_t conv_bit_errors = 0;
  std::size_t ldpc_bit_errors = 0;
  const int blocks = 60;
  for (int t = 0; t < blocks; ++t) {
    // Convolutional block of the same info size.
    Bits info = rng.random_bits(324);
    for (std::size_t i = 318; i < 324; ++i) info[i] = 0;
    const Bits coded = convolutional_encode(info);
    RVec cllrs(coded.size());
    for (std::size_t i = 0; i < coded.size(); ++i) {
      const double tx = coded[i] ? -1.0 : 1.0;
      cllrs[i] = 2.0 * (tx + sigma * rng.gaussian()) / (sigma * sigma);
    }
    conv_bit_errors += hamming_distance(viterbi_decode(cllrs, true), info);

    const Bits info2 = rng.random_bits(324);
    const Bits cw = code.encode(info2);
    RVec llrs(648);
    for (std::size_t i = 0; i < 648; ++i) {
      const double tx = cw[i] ? -1.0 : 1.0;
      llrs[i] = 2.0 * (tx + sigma * rng.gaussian()) / (sigma * sigma);
    }
    ldpc_bit_errors += hamming_distance(code.decode(llrs, 50).info, info2);
  }
  EXPECT_LT(ldpc_bit_errors, conv_bit_errors);
}

}  // namespace
}  // namespace wlan::phy

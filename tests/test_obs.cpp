// Tests for the observability layer: metrics registry, trace sinks,
// scoped timers, scheduler instrumentation, and reconciliation of the
// network simulator's trace stream against its counters.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "dsp/fft.h"
#include "net/netsim.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "sim/scheduler.h"
#include "sim/stats.h"

namespace wlan {
namespace {

// ---- sim::Tally / sim::TimeAverage edge cases ----

TEST(Tally, EmptyIsAllZero) {
  sim::Tally t;
  EXPECT_EQ(t.count(), 0u);
  EXPECT_DOUBLE_EQ(t.mean(), 0.0);
  EXPECT_DOUBLE_EQ(t.variance(), 0.0);
  EXPECT_DOUBLE_EQ(t.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(t.min(), 0.0);
  EXPECT_DOUBLE_EQ(t.max(), 0.0);
  EXPECT_DOUBLE_EQ(t.total(), 0.0);
}

TEST(Tally, SingleSampleHasZeroVariance) {
  sim::Tally t;
  t.add(-3.5);
  EXPECT_EQ(t.count(), 1u);
  EXPECT_DOUBLE_EQ(t.mean(), -3.5);
  EXPECT_DOUBLE_EQ(t.variance(), 0.0);
  EXPECT_DOUBLE_EQ(t.min(), -3.5);
  EXPECT_DOUBLE_EQ(t.max(), -3.5);
}

TEST(Tally, KnownMomentsAndExtremes) {
  sim::Tally t;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) t.add(x);
  EXPECT_EQ(t.count(), 8u);
  EXPECT_DOUBLE_EQ(t.mean(), 5.0);
  EXPECT_DOUBLE_EQ(t.total(), 40.0);
  // Sample variance of the classic dataset: sum sq dev = 32, n-1 = 7.
  EXPECT_NEAR(t.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(t.min(), 2.0);
  EXPECT_DOUBLE_EQ(t.max(), 9.0);
}

TEST(TimeAverage, FirstUpdateOnlyStartsTheClock) {
  sim::TimeAverage a;
  a.update(5.0, 3.0);
  // Zero elapsed span: average falls back to the current value.
  EXPECT_DOUBLE_EQ(a.average(), 3.0);
  EXPECT_DOUBLE_EQ(a.integral(), 0.0);
}

TEST(TimeAverage, PiecewiseConstantSignal) {
  sim::TimeAverage a;
  a.update(0.0, 2.0);   // value 2 over [0, 4)
  a.update(4.0, 10.0);  // value 10 over [4, 6)
  a.update(6.0, 0.0);
  EXPECT_DOUBLE_EQ(a.integral(), 2.0 * 4.0 + 10.0 * 2.0);
  EXPECT_DOUBLE_EQ(a.average(), 28.0 / 6.0);
}

TEST(TimeAverage, ZeroLengthSegmentsAreHarmless) {
  sim::TimeAverage a;
  a.update(1.0, 5.0);
  a.update(1.0, 7.0);  // same timestamp: replaces the value, adds nothing
  a.update(2.0, 0.0);
  EXPECT_DOUBLE_EQ(a.integral(), 7.0);
}

TEST(TimeAverage, OutOfOrderUpdateThrows) {
  sim::TimeAverage a;
  a.update(2.0, 1.0);
  EXPECT_THROW(a.update(1.0, 1.0), ContractError);
}

// ---- obs::Histogram ----

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(obs::Histogram(0.0, 1.0, 8), ContractError);
  EXPECT_THROW(obs::Histogram(-1.0, 1.0, 8), ContractError);
  EXPECT_THROW(obs::Histogram(1.0, 1.0, 8), ContractError);
  EXPECT_THROW(obs::Histogram(1e-3, 1.0, 0), ContractError);
}

TEST(Histogram, EmptyHistogram) {
  obs::Histogram h(1e-3, 1.0, 16);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_TRUE(std::isnan(h.percentile(50.0)));
}

TEST(Histogram, ExactMomentsWithApproximateBins) {
  obs::Histogram h(1e-3, 1e3, 32);
  for (const double x : {0.01, 0.1, 1.0, 10.0, 100.0}) h.record(x);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 111.11);
  EXPECT_DOUBLE_EQ(h.mean(), 111.11 / 5.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.01);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, UnderflowAndOverflowBuckets) {
  obs::Histogram h(1.0, 10.0, 4);
  h.record(0.0);    // non-positive -> underflow
  h.record(-5.0);   // non-positive -> underflow
  h.record(0.5);    // below lo -> underflow
  h.record(10.0);   // hi is exclusive -> overflow
  h.record(1e6);    // far above -> overflow
  h.record(3.0);    // interior
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.underflow(), 3u);
  EXPECT_EQ(h.overflow(), 2u);
  std::uint64_t interior = 0;
  for (std::size_t i = 0; i < h.bins(); ++i) interior += h.bin_count(i);
  EXPECT_EQ(interior, 1u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  EXPECT_DOUBLE_EQ(h.max(), 1e6);
}

TEST(Histogram, EdgesAreLogSpacedAndContiguous) {
  obs::Histogram h(1e-2, 1e2, 4);
  // Four bins over four decades: each bin spans one decade.
  for (std::size_t i = 0; i < h.bins(); ++i) {
    EXPECT_NEAR(h.lower_edge(i), std::pow(10.0, -2.0 + static_cast<double>(i)),
                1e-9);
    EXPECT_DOUBLE_EQ(h.upper_edge(i), h.lower_edge(i + 1));
  }
  EXPECT_NEAR(h.upper_edge(h.bins() - 1), 1e2, 1e-9);
}

TEST(Histogram, RecordLandsInTheRightBin) {
  obs::Histogram h(1e-2, 1e2, 4);
  h.record(0.5);  // decade [0.1, 1) -> bin 1
  EXPECT_EQ(h.bin_count(1), 1u);
  h.record(50.0);  // decade [10, 100) -> bin 3
  EXPECT_EQ(h.bin_count(3), 1u);
}

TEST(Histogram, PercentilesClampToObservedExtremes) {
  obs::Histogram h(1e-3, 1e3, 64);
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i) * 0.1);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), h.min());
  EXPECT_DOUBLE_EQ(h.percentile(100.0), h.max());
  // Percentiles are monotone and bracket the true quantiles to within a
  // bin width (log-spaced 64 bins over six decades: ~24% wide).
  double prev = h.percentile(0.0);
  for (double p = 5.0; p <= 100.0; p += 5.0) {
    const double q = h.percentile(p);
    EXPECT_GE(q, prev);
    prev = q;
  }
  EXPECT_NEAR(h.percentile(50.0), 50.0, 15.0);
  EXPECT_NEAR(h.percentile(90.0), 90.0, 25.0);
}

TEST(Histogram, SingleSamplePercentileIsExact) {
  obs::Histogram h(1e-3, 1e3, 16);
  h.record(0.42);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.42);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.42);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 0.42);
}

TEST(Histogram, PercentileOutOfRangePClampsToExtremes) {
  obs::Histogram h(1e-3, 1e3, 16);
  for (const double x : {0.1, 1.0, 10.0}) h.record(x);
  EXPECT_DOUBLE_EQ(h.percentile(-50.0), h.min());
  EXPECT_DOUBLE_EQ(h.percentile(250.0), h.max());
  EXPECT_TRUE(std::isnan(h.percentile(std::nan(""))));
}

TEST(Histogram, PercentileAllMassInOverflowBin) {
  obs::Histogram h(1e-3, 1.0, 8);
  // Every sample >= hi: the overflow bucket interpolates [min, max].
  for (const double x : {2.0, 4.0, 8.0}) h.record(x);
  EXPECT_EQ(h.overflow(), 3u);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 8.0);
  const double mid = h.percentile(50.0);
  EXPECT_GE(mid, 2.0);
  EXPECT_LE(mid, 8.0);
  double prev = h.percentile(0.0);
  for (double p = 10.0; p <= 100.0; p += 10.0) {
    const double q = h.percentile(p);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

TEST(Histogram, PercentileAllMassInUnderflowBin) {
  obs::Histogram h(1.0, 10.0, 8);
  h.record(0.0);
  h.record(0.5);
  EXPECT_EQ(h.underflow(), 2u);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 0.5);
  const double mid = h.percentile(50.0);
  EXPECT_GE(mid, 0.0);
  EXPECT_LE(mid, 0.5);
}

// ---- obs::Registry ----

TEST(Registry, SameKeyReturnsSameInstrument) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("net.data_tx");
  obs::Counter& b = reg.counter("net.data_tx");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Registry, LabelsDistinguishInstruments) {
  obs::Registry reg;
  obs::Counter& f0 = reg.counter("net.delivered", {{"flow", "0"}});
  obs::Counter& f1 = reg.counter("net.delivered", {{"flow", "1"}});
  EXPECT_NE(&f0, &f1);
  f0.add(7);
  EXPECT_EQ(reg.find_counter("net.delivered", {{"flow", "0"}})->value(), 7u);
  EXPECT_EQ(reg.find_counter("net.delivered", {{"flow", "1"}})->value(), 0u);
  EXPECT_EQ(reg.find_counter("net.delivered"), nullptr);
  EXPECT_EQ(reg.find_counter("absent"), nullptr);
}

TEST(Registry, InstrumentsStayValidAsRegistryGrows) {
  obs::Registry reg;
  obs::Counter& first = reg.counter("first");
  for (int i = 0; i < 100; ++i) {
    reg.counter("extra_" + std::to_string(i));
  }
  first.add();
  EXPECT_EQ(reg.find_counter("first")->value(), 1u);
}

TEST(Registry, SnapshotJsonContainsEveryKind) {
  obs::Registry reg;
  reg.counter("events", {{"kind", "tx"}}).add(5);
  reg.gauge("load").set(0.75);
  reg.histogram("delay_s", 1e-6, 10.0, 32).record(0.5);
  const std::string json = reg.snapshot_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"events\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"tx\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":5"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
}

TEST(Json, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(obs::json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  std::ostringstream out;
  obs::json_number(out, std::nan(""));
  EXPECT_EQ(out.str(), "null");
}

// ---- trace sinks ----

obs::TraceEvent make_event(double t, obs::EventType type) {
  obs::TraceEvent e;
  e.time_s = t;
  e.type = type;
  return e;
}

TEST(TraceSink, JsonlWritesOneParseableLinePerEvent) {
  std::ostringstream out;
  obs::JsonlTraceSink sink(out);
  obs::TraceEvent e = make_event(1.25, obs::EventType::kTxStart);
  e.node = 2;
  e.peer = 0;
  e.flow = 1;
  e.value = 3.5e-4;
  e.detail = "DATA";
  sink.record(e);
  sink.record(make_event(2.0, obs::EventType::kCollision));
  sink.flush();
  EXPECT_EQ(sink.lines(), 2u);

  std::istringstream in(out.str());
  std::string line1;
  std::string line2;
  ASSERT_TRUE(std::getline(in, line1));
  ASSERT_TRUE(std::getline(in, line2));
  EXPECT_NE(line1.find("\"ev\":\"TX_START\""), std::string::npos);
  EXPECT_NE(line1.find("\"node\":2"), std::string::npos);
  EXPECT_NE(line1.find("\"peer\":0"), std::string::npos);
  EXPECT_NE(line1.find("\"flow\":1"), std::string::npos);
  EXPECT_NE(line1.find("\"detail\":\"DATA\""), std::string::npos);
  // Absent ids (-1) are omitted entirely.
  EXPECT_EQ(line2.find("\"node\""), std::string::npos);
  EXPECT_NE(line2.find("\"ev\":\"COLLISION\""), std::string::npos);
}

TEST(TraceSink, RingKeepsExactCountsAcrossEviction) {
  obs::RingTraceSink ring(4);
  for (int i = 0; i < 10; ++i) {
    ring.record(make_event(static_cast<double>(i), obs::EventType::kRxOk));
  }
  ring.record(make_event(10.0, obs::EventType::kDrop));
  EXPECT_EQ(ring.events().size(), 4u);
  EXPECT_EQ(ring.total(), 11u);
  EXPECT_EQ(ring.dropped(), 7u);
  EXPECT_EQ(ring.count(obs::EventType::kRxOk), 10u);
  EXPECT_EQ(ring.count(obs::EventType::kDrop), 1u);
  EXPECT_EQ(ring.count(obs::EventType::kTxStart), 0u);
  // The surviving window is the most recent events.
  EXPECT_DOUBLE_EQ(ring.events().front().time_s, 7.0);
  EXPECT_DOUBLE_EQ(ring.events().back().time_s, 10.0);
}

TEST(TraceSink, EventNamesAreStable) {
  EXPECT_STREQ(obs::event_name(obs::EventType::kTxStart), "TX_START");
  EXPECT_STREQ(obs::event_name(obs::EventType::kNavSet), "NAV_SET");
  EXPECT_STREQ(obs::event_name(obs::EventType::kBackoffFreeze),
               "BACKOFF_FREEZE");
}

// ---- timers and the kernel profiler ----

TEST(ScopedTimer, RecordsPositiveElapsedIntoHistogram) {
  obs::Histogram h(1e-9, 10.0, 32);
  {
    obs::ScopedTimer timer(&h);
    volatile double x = 0.0;
    for (int i = 0; i < 1000; ++i) x = x + 1.0;
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(h.max(), 0.0);
}

TEST(ScopedTimer, NullHistogramIsANoOp) {
  const obs::ScopedTimer timer(nullptr);  // must not crash or record
}

TEST(KernelProfiler, DisabledByDefaultEnabledOnDemand) {
  obs::disable_kernel_profiling();
  EXPECT_FALSE(obs::kernel_profiling_enabled());
  EXPECT_EQ(obs::kernel_histogram(obs::Kernel::kFft), nullptr);

  obs::Registry reg;
  obs::enable_kernel_profiling(reg);
  EXPECT_TRUE(obs::kernel_profiling_enabled());
  ASSERT_NE(obs::kernel_histogram(obs::Kernel::kFft), nullptr);

  // A real FFT lands samples in the armed slot.
  CVec buf(64, {1.0, 0.0});
  dsp::fft_inplace(buf);
  EXPECT_GE(obs::kernel_histogram(obs::Kernel::kFft)->count(), 1u);
  EXPECT_NE(reg.find_histogram("kernel.fft"), nullptr);

  obs::disable_kernel_profiling();
  EXPECT_EQ(obs::kernel_histogram(obs::Kernel::kFft), nullptr);
}

// ---- scheduler instrumentation ----

TEST(Scheduler, EventHookSeesTimeAndQueueDepth) {
  sim::Scheduler sched;
  std::vector<double> times;
  std::vector<std::size_t> depths;
  sched.set_event_hook([&](double t, std::size_t pending) {
    times.push_back(t);
    depths.push_back(pending);
  });
  sched.schedule(1.0, [] {});
  sched.schedule(2.0, [] {});
  sched.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
  EXPECT_EQ(depths[0], 1u);
  EXPECT_EQ(depths[1], 0u);
  EXPECT_EQ(sched.executed(), 2u);
}

TEST(Scheduler, BoundMetricsTrackExecution) {
  obs::Registry reg;
  sim::Scheduler sched;
  sched.bind_metrics(reg);
  for (int i = 0; i < 5; ++i) {
    sched.schedule(static_cast<double>(i), [] {});
  }
  sched.run();
  const obs::Counter* executed = reg.find_counter("sim.events_executed");
  ASSERT_NE(executed, nullptr);
  EXPECT_EQ(executed->value(), 5u);
  const obs::Histogram* depth = reg.find_histogram("sim.queue_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->count(), 5u);
}

// ---- netsim trace reconciliation ----

/// Duplicates the event stream into two sinks so one simulation run can
/// feed both the ring (for counting) and the JSONL stream.
class TeeSink final : public obs::TraceSink {
 public:
  TeeSink(obs::TraceSink& a, obs::TraceSink& b) : a_(a), b_(b) {}
  void record(const obs::TraceEvent& event) override {
    a_.record(event);
    b_.record(event);
  }
  void flush() override {
    a_.flush();
    b_.flush();
  }

 private:
  obs::TraceSink& a_;
  obs::TraceSink& b_;
};

std::uint64_t count_with_detail(const obs::RingTraceSink& ring,
                                obs::EventType type, const char* detail) {
  std::uint64_t n = 0;
  for (const obs::TraceEvent& e : ring.events()) {
    if (e.type == type && std::strcmp(e.detail, detail) == 0) ++n;
  }
  return n;
}

TEST(NetsimTrace, EventsReconcileWithCounters) {
  // A contending topology plus a Poisson flow: exercises collisions,
  // retries, queued arrivals, and delivery.
  std::vector<net::NodeConfig> nodes(3);
  nodes[0].position = {0.0, 0.0};
  nodes[1].position = {5.0, 0.0};
  nodes[2].position = {2.5, 4.0};
  const std::vector<net::Flow> flows = {{0, 2}, {1, 2, 400.0}};

  obs::RingTraceSink ring(1u << 20);  // big enough that nothing evicts
  std::ostringstream jsonl_out;
  obs::JsonlTraceSink jsonl(jsonl_out);
  TeeSink tee(ring, jsonl);

  obs::Registry reg;
  net::NetworkConfig cfg;
  cfg.duration_s = 0.3;
  cfg.trace = &tee;
  cfg.registry = &reg;

  Rng rng(42);
  const auto r = net::simulate_network(cfg, nodes, flows, rng);
  ASSERT_GT(r.total_delivered, 0u);
  ASSERT_EQ(ring.dropped(), 0u);

  // Every data/RTS launch, collision, drop, and delivery in the result
  // must appear in the trace stream, one event each.
  EXPECT_EQ(count_with_detail(ring, obs::EventType::kTxStart, "DATA"),
            r.data_tx_count);
  EXPECT_EQ(count_with_detail(ring, obs::EventType::kTxStart, "RTS"),
            r.rts_tx_count);
  EXPECT_EQ(ring.count(obs::EventType::kCollision), r.simultaneous_starts);
  EXPECT_EQ(count_with_detail(ring, obs::EventType::kStateChange, "DELIVERED"),
            r.total_delivered);
  std::uint64_t drops = 0;
  for (const auto& f : r.flows) drops += f.drops;
  EXPECT_EQ(ring.count(obs::EventType::kDrop), drops);
  // Transmissions that started either ended within the run or were still
  // in the air at the cutoff.
  EXPECT_LE(ring.count(obs::EventType::kTxEnd),
            ring.count(obs::EventType::kTxStart));
  // The JSONL stream saw the identical event sequence.
  EXPECT_EQ(jsonl.lines(), ring.total());

  // The registry holds the same numbers the result was populated from.
  EXPECT_EQ(reg.find_counter("net.data_tx")->value(), r.data_tx_count);
  EXPECT_EQ(reg.find_counter("net.simultaneous_starts")->value(),
            r.simultaneous_starts);
  const obs::Counter* executed = reg.find_counter("sim.events_executed");
  ASSERT_NE(executed, nullptr);
  EXPECT_GT(executed->value(), 0u);
}

TEST(NetsimTrace, RtsCtsRunEmitsNavAndRtsEvents) {
  const auto setup = net::make_hidden_terminal_setup(100.0);
  obs::RingTraceSink ring(1u << 20);
  net::NetworkConfig cfg;
  cfg.duration_s = 0.2;
  cfg.rts_cts = true;
  cfg.trace = &ring;
  Rng rng(7);
  const auto r = net::simulate_network(cfg, setup.nodes, setup.flows, rng);
  ASSERT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(count_with_detail(ring, obs::EventType::kTxStart, "RTS"),
            r.rts_tx_count);
  EXPECT_GT(r.rts_tx_count, 0u);
  EXPECT_GT(ring.count(obs::EventType::kNavSet), 0u);
}

TEST(NetsimTrace, DisabledTracingMatchesEnabledResults) {
  // The trace sink must be purely observational: identical results with
  // and without it.
  std::vector<net::NodeConfig> nodes(2);
  nodes[1].position = {10.0, 0.0};
  net::NetworkConfig cfg;
  cfg.duration_s = 0.2;

  Rng rng1(9);
  const auto plain = net::simulate_network(cfg, nodes, {{0, 1}}, rng1);

  obs::RingTraceSink ring(1u << 18);
  cfg.trace = &ring;
  Rng rng2(9);
  const auto traced = net::simulate_network(cfg, nodes, {{0, 1}}, rng2);

  EXPECT_EQ(plain.total_delivered, traced.total_delivered);
  EXPECT_EQ(plain.data_tx_count, traced.data_tx_count);
  EXPECT_DOUBLE_EQ(plain.aggregate_throughput_mbps,
                   traced.aggregate_throughput_mbps);
  EXPECT_GT(ring.total(), 0u);
}

}  // namespace
}  // namespace wlan

// The deterministic parallel Monte-Carlo engine: seed derivation,
// pool scheduling, and the bitwise thread-count-independence contract
// that every retrofitted bench and link runner relies on.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/units.h"
#include "core/link.h"
#include "net/netsim.h"
#include "obs/timer.h"
#include "par/montecarlo.h"
#include "par/pool.h"
#include "phy/convolutional.h"
#include "phy/ldpc.h"

namespace wlan {
namespace {

// --- Seed derivation -------------------------------------------------

TEST(DeriveSeed, DeterministicAndCounterSensitive) {
  const std::uint64_t s = par::derive_seed(1, 2, 3);
  EXPECT_EQ(s, par::derive_seed(1, 2, 3));
  EXPECT_NE(s, par::derive_seed(1, 2, 4));
  EXPECT_NE(s, par::derive_seed(1, 3, 3));
  EXPECT_NE(s, par::derive_seed(2, 2, 3));
  // Swapping point and trial must not collide (the counters are
  // absorbed with distinct multipliers).
  EXPECT_NE(par::derive_seed(1, 2, 3), par::derive_seed(1, 3, 2));
}

TEST(DeriveSeed, NoCollisionsInASweepSizedGrid) {
  std::vector<std::uint64_t> seen;
  for (std::uint64_t p = 0; p < 64; ++p) {
    for (std::uint64_t t = 0; t < 64; ++t) {
      seen.push_back(par::derive_seed(42, p, t));
    }
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

// --- ThreadPool ------------------------------------------------------

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  for (const unsigned jobs : {1u, 2u, 8u}) {
    par::ThreadPool pool(jobs);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(hits.size(), 7, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  par::ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.parallel_for(8, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      pool.parallel_for(16, 2, [&](std::size_t ib, std::size_t ie) {
        total.fetch_add(static_cast<int>(ie - ib));
      });
    }
  });
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  par::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100, 1,
                        [&](std::size_t b, std::size_t) {
                          if (b == 57) throw std::runtime_error("chunk 57");
                        }),
      std::runtime_error);
  // The pool must stay fully usable after a failed run.
  std::atomic<int> count{0};
  pool.parallel_for(64, 4, [&](std::size_t b, std::size_t e) {
    count.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(count.load(), 64);
}

// --- montecarlo / sweep determinism ----------------------------------

// Floating-point accumulation is order-sensitive, so this catches any
// schedule leak: partials must merge in chunk order, never completion
// order.
TEST(Montecarlo, FloatSumBitwiseIdenticalAcrossThreadCounts) {
  auto run = [](unsigned jobs) {
    par::SweepOptions opt;
    opt.root_seed = 99;
    opt.jobs = jobs;
    return par::montecarlo<double>(
        10000, 0, opt,
        [](std::uint64_t, std::size_t, Rng& rng, double& acc) {
          acc += rng.gaussian() * rng.uniform(0.1, 10.0);
        },
        [](double& acc, const double& partial) { acc += partial; });
  };
  const double serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(8));
}

// A C7-style coded-BER sweep (convolutional vs LDPC over AWGN) — the
// actual workload the benches run, bit-for-bit equal at 1 and 8 lanes.
TEST(Montecarlo, LdpcSweepBitwiseIdenticalAcrossThreadCounts) {
  const phy::LdpcCode code(648, 324, 11);
  struct Cell {
    std::size_t conv_err = 0;
    std::size_t ldpc_err = 0;
  };
  auto run = [&](unsigned jobs) {
    par::SweepOptions opt;
    opt.root_seed = 7;
    opt.jobs = jobs;
    return par::sweep<Cell>(
        3, 8, opt,
        [&](std::uint64_t point, std::size_t, Rng& rng, Cell& acc) {
          const double ebn0_db = 1.0 + static_cast<double>(point);
          const double sigma = std::sqrt(1.0 / db_to_lin(ebn0_db));
          Bits info = rng.random_bits(324);
          for (std::size_t i = 318; i < 324; ++i) info[i] = 0;
          const Bits coded = phy::convolutional_encode(info);
          RVec llrs(coded.size());
          for (std::size_t i = 0; i < coded.size(); ++i) {
            const double tx = coded[i] ? -1.0 : 1.0;
            llrs[i] = 2.0 * (tx + sigma * rng.gaussian()) / (sigma * sigma);
          }
          acc.conv_err +=
              hamming_distance(phy::viterbi_decode(llrs, true), info);

          const Bits info2 = rng.random_bits(324);
          const Bits cw = code.encode(info2);
          RVec cllrs(648);
          for (std::size_t i = 0; i < 648; ++i) {
            const double tx = cw[i] ? -1.0 : 1.0;
            cllrs[i] = 2.0 * (tx + sigma * rng.gaussian()) / (sigma * sigma);
          }
          acc.ldpc_err += hamming_distance(code.decode(cllrs, 50).info, info2);
        },
        [](Cell& acc, const Cell& part) {
          acc.conv_err += part.conv_err;
          acc.ldpc_err += part.ldpc_err;
        });
  };
  const auto serial = run(1);
  const auto parallel = run(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t p = 0; p < serial.size(); ++p) {
    EXPECT_EQ(serial[p].conv_err, parallel[p].conv_err) << "point " << p;
    EXPECT_EQ(serial[p].ldpc_err, parallel[p].ldpc_err) << "point " << p;
  }
}

// Kernel profiling during a parallel sweep: every decode lands in the
// initiator's registry via the shard merge — same event counts whether
// the trials ran on 1 or 8 lanes (wall times differ; counts cannot).
TEST(Montecarlo, ProfilingShardCountsIndependentOfThreadCount) {
  const phy::LdpcCode code(128, 64, 5);
  auto count_decodes = [&](unsigned jobs) {
    obs::Registry reg;
    obs::enable_kernel_profiling(reg);
    par::SweepOptions opt;
    opt.jobs = jobs;
    par::montecarlo<int>(
        40, 0, opt,
        [&](std::uint64_t, std::size_t, Rng& rng, int&) {
          RVec llrs(128);
          for (auto& l : llrs) l = rng.gaussian();
          code.decode(llrs, 5);
        },
        [](int&, const int&) {});
    obs::disable_kernel_profiling();
    const obs::Histogram* h = reg.find_histogram(
        obs::kernel_metric_name(obs::Kernel::kLdpcDecode));
    return h ? h->count() : 0;
  };
  const auto serial = count_decodes(1);
  EXPECT_EQ(serial, 40u);
  EXPECT_EQ(serial, count_decodes(8));
}

// --- link runners ----------------------------------------------------

TEST(LinkRunners, OfdmLinkIdenticalAcrossThreadCounts) {
  auto run = [](unsigned jobs) {
    par::set_default_jobs(jobs);
    Rng rng(123);
    const LinkResult r =
        run_ofdm_link(phy::OfdmMcs::k12Mbps, 100, 30, 6.0, rng);
    par::set_default_jobs(0);
    return r;
  };
  const LinkResult serial = run(1);
  const LinkResult parallel = run(8);
  EXPECT_EQ(serial.packets, parallel.packets);
  EXPECT_EQ(serial.packet_errors, parallel.packet_errors);
  EXPECT_EQ(serial.bits, parallel.bits);
  EXPECT_EQ(serial.bit_errors, parallel.bit_errors);
}

// --- simulate_network_batch ------------------------------------------

TEST(NetsimBatch, ResultsAndMergedRegistryIdenticalAcrossThreadCounts) {
  // Five nodes: two crossing saturated flows plus a Poisson uplink.
  std::vector<net::NodeConfig> nodes(5);
  nodes[0].position = {0.0, 0.0};
  nodes[1].position = {30.0, 0.0};
  nodes[2].position = {15.0, 10.0};
  nodes[3].position = {15.0, -10.0};
  nodes[4].position = {15.0, 0.0};
  const std::vector<net::Flow> flows = {{0, 4}, {1, 4}, {2, 4, 500.0}};
  net::NetworkConfig cfg;
  cfg.duration_s = 0.2;

  auto run = [&](unsigned jobs) {
    net::BatchOptions opt;
    opt.root_seed = 31;
    opt.jobs = jobs;
    auto merged = std::make_unique<obs::Registry>();
    opt.registry = merged.get();
    auto results = net::simulate_network_batch(cfg, nodes, flows, 6, opt);
    return std::make_pair(std::move(results), merged->snapshot_json());
  };

  const auto [serial, serial_snapshot] = run(1);
  const auto [parallel, parallel_snapshot] = run(8);
  ASSERT_EQ(serial.size(), 6u);
  ASSERT_EQ(parallel.size(), 6u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].total_delivered, parallel[i].total_delivered);
    EXPECT_EQ(serial[i].data_tx_count, parallel[i].data_tx_count);
    EXPECT_EQ(serial[i].data_failures, parallel[i].data_failures);
    EXPECT_EQ(serial[i].aggregate_throughput_mbps,
              parallel[i].aggregate_throughput_mbps);
    ASSERT_EQ(serial[i].flows.size(), parallel[i].flows.size());
    for (std::size_t f = 0; f < serial[i].flows.size(); ++f) {
      EXPECT_EQ(serial[i].flows[f].delivered, parallel[i].flows[f].delivered);
      EXPECT_EQ(serial[i].flows[f].throughput_mbps,
                parallel[i].flows[f].throughput_mbps);
      EXPECT_EQ(serial[i].flows[f].mean_delay_s,
                parallel[i].flows[f].mean_delay_s);
    }
  }
  // Per-run registries merge in run order, so even the full metric
  // snapshot (counters, gauges, histograms) is schedule-independent.
  EXPECT_EQ(serial_snapshot, parallel_snapshot);
}

TEST(NetsimBatch, PerModelResultsIdenticalAcrossThreadCounts) {
  // The PER error model adds RNG consumers (shadowing, fading
  // dictionaries, per-frame reception draws): every draw must come from
  // the run's own stream so the batch stays bitwise schedule-independent.
  const auto setup = net::make_hidden_terminal_setup(150.0);
  net::NetworkConfig cfg;
  cfg.duration_s = 0.15;
  cfg.error_model.model = net::RxModel::kPerModel;
  cfg.error_model.shadowing_sigma_db = 5.0;
  cfg.error_model.realizations = 8;
  cfg.rate_control = net::RateControlMode::kArf;

  auto run = [&](unsigned jobs) {
    net::BatchOptions opt;
    opt.root_seed = 77;
    opt.jobs = jobs;
    auto merged = std::make_unique<obs::Registry>();
    opt.registry = merged.get();
    auto results =
        net::simulate_network_batch(cfg, setup.nodes, setup.flows, 5, opt);
    return std::make_pair(std::move(results), merged->snapshot_json());
  };

  const auto [serial, serial_snapshot] = run(1);
  const auto [parallel, parallel_snapshot] = run(8);
  ASSERT_EQ(serial.size(), 5u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].total_delivered, parallel[i].total_delivered);
    EXPECT_EQ(serial[i].data_failures, parallel[i].data_failures);
    EXPECT_EQ(serial[i].aggregate_throughput_mbps,
              parallel[i].aggregate_throughput_mbps);
    for (std::size_t f = 0; f < serial[i].flows.size(); ++f) {
      EXPECT_EQ(serial[i].flows[f].delivered, parallel[i].flows[f].delivered);
      EXPECT_EQ(serial[i].flows[f].mean_data_rate_mbps,
                parallel[i].flows[f].mean_data_rate_mbps);
    }
  }
  EXPECT_EQ(serial_snapshot, parallel_snapshot);
}

TEST(EpochStats, AggregatesRoundsAndPublishesGauges) {
  par::EpochStats stats;
  EXPECT_EQ(stats.utilization(8), 0.0);
  EXPECT_EQ(stats.imbalance(), 0.0);

  // Two rounds of 4 shards: busy sums and per-round maxima accumulate.
  const double round1[4] = {1.0, 1.0, 1.0, 1.0};
  const double round2[4] = {2.0, 1.0, 1.0, 0.0};
  stats.record_round(2.0, round1, 4);
  stats.record_round(2.0, round2, 4);
  EXPECT_EQ(stats.rounds, 2u);
  EXPECT_EQ(stats.tasks, 4u);
  EXPECT_DOUBLE_EQ(stats.wall_s, 4.0);
  EXPECT_DOUBLE_EQ(stats.busy_s, 8.0);
  EXPECT_DOUBLE_EQ(stats.max_busy_s, 3.0);  // 1.0 + 2.0
  // busy / (wall * lanes) = 8 / (4 * 4)
  EXPECT_DOUBLE_EQ(stats.utilization(4), 0.5);
  // max_busy / (busy / tasks) = 3 / 2
  EXPECT_DOUBLE_EQ(stats.imbalance(), 1.5);
  // Clamped to 1 when busy exceeds lanes * wall (timer skew).
  EXPECT_DOUBLE_EQ(stats.utilization(1), 1.0);

  obs::Registry reg;
  par::publish_epoch_stats(reg, stats, 4);
  const std::string json = reg.snapshot_json();
  EXPECT_NE(json.find("par.epoch.rounds"), std::string::npos);
  EXPECT_NE(json.find("par.epoch.wall_s"), std::string::npos);
  EXPECT_NE(json.find("par.epoch.utilization"), std::string::npos);
  EXPECT_NE(json.find("par.epoch.imbalance"), std::string::npos);
}

TEST(NetsimBatch, RunsDifferFromEachOther) {
  std::vector<net::NodeConfig> nodes(2);
  nodes[1].position = {10.0, 0.0};
  net::NetworkConfig cfg;
  cfg.duration_s = 0.2;
  net::BatchOptions opt;
  opt.root_seed = 5;
  const auto runs =
      net::simulate_network_batch(cfg, nodes, {{0, 1, 800.0}}, 4, opt);
  // Independent Poisson arrivals: at least one pair of runs must
  // deliver different counts (all-equal would mean seed reuse).
  bool any_difference = false;
  for (std::size_t i = 1; i < runs.size(); ++i) {
    if (runs[i].flows[0].delivered != runs[0].flows[0].delivered) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace wlan

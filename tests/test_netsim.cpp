// Tests for the event-driven network simulator.
#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "core/link.h"
#include "mac/bianchi.h"
#include "net/netsim.h"

namespace wlan::net {
namespace {

NetworkConfig base_config() {
  NetworkConfig cfg;
  cfg.duration_s = 0.5;
  return cfg;
}

std::vector<NodeConfig> pair_topology(double separation_m) {
  std::vector<NodeConfig> nodes(2);
  nodes[0].position = {0.0, 0.0};
  nodes[1].position = {separation_m, 0.0};
  return nodes;
}

TEST(NetSim, SingleFlowApproachesAnalyticDcfBound) {
  Rng rng(1);
  const auto r =
      simulate_network(base_config(), pair_topology(10.0), {{0, 1}}, rng);
  // 24 Mbps PHY, 1000-byte payloads, DIFS+backoff+data+SIFS+ACK cycle:
  // ~15-16 Mbps of MAC goodput.
  EXPECT_GT(r.aggregate_throughput_mbps, 13.0);
  EXPECT_LT(r.aggregate_throughput_mbps, 18.0);
  EXPECT_EQ(r.data_failures, 0u);
  EXPECT_GT(r.total_delivered, 500u);
}

TEST(NetSim, OutOfRangeLinkDeliversNothing) {
  Rng rng(2);
  const auto r =
      simulate_network(base_config(), pair_topology(2000.0), {{0, 1}}, rng);
  EXPECT_EQ(r.total_delivered, 0u);
}

TEST(NetSim, TwoVisibleContendersShareAndCollide) {
  Rng rng(3);
  std::vector<NodeConfig> nodes(3);
  nodes[0].position = {0.0, 0.0};
  nodes[1].position = {5.0, 0.0};
  nodes[2].position = {2.5, 4.0};
  NetworkConfig cfg = base_config();
  cfg.duration_s = 2.0;
  const auto r = simulate_network(cfg, nodes, {{0, 2}, {1, 2}}, rng);
  // Both flows get a fair share.
  const double t0 = r.flows[0].throughput_mbps;
  const double t1 = r.flows[1].throughput_mbps;
  EXPECT_GT(t0, 0.3 * t1);
  EXPECT_GT(t1, 0.3 * t0);
  // Same-slot collisions occur at roughly 1/(CWmin+1) of attempts and
  // fail both frames.
  EXPECT_GT(r.simultaneous_starts, 10u);
  EXPECT_GT(r.data_failures, r.simultaneous_starts);
  EXPECT_GT(r.flows[0].retries + r.flows[1].retries, 10u);
}

TEST(NetSim, HiddenTerminalsCollideWithoutRtsCts) {
  Rng rng(4);
  const auto setup = make_hidden_terminal_setup(120.0);
  NetworkConfig cfg = base_config();
  cfg.duration_s = 2.0;
  const auto r = simulate_network(cfg, setup.nodes, setup.flows, rng);
  // The senders cannot hear each other: data frames overlap and die at
  // the receiver far more often than CSMA would ever allow.
  EXPECT_GT(r.data_failure_rate(), 0.1);
}

TEST(NetSim, RtsCtsProtectsHiddenTerminals) {
  Rng rng(5);
  const auto setup = make_hidden_terminal_setup(120.0);
  NetworkConfig cfg = base_config();
  cfg.duration_s = 2.0;
  cfg.rts_cts = true;
  const auto r = simulate_network(cfg, setup.nodes, setup.flows, rng);
  // Collisions move to the cheap RTS frames; the data frames survive.
  EXPECT_LT(r.data_failure_rate(), 0.05);
  EXPECT_GT(r.rts_failures, 0u);
  EXPECT_GT(r.aggregate_throughput_mbps, 5.0);
}

TEST(NetSim, VisibleContendersDontNeedRts) {
  // When everyone hears everyone, RTS/CTS only adds overhead.
  std::vector<NodeConfig> nodes(3);
  nodes[0].position = {0.0, 0.0};
  nodes[1].position = {5.0, 0.0};
  nodes[2].position = {2.5, 4.0};
  NetworkConfig basic = base_config();
  basic.duration_s = 2.0;
  NetworkConfig rts = basic;
  rts.rts_cts = true;
  Rng r1(6);
  Rng r2(6);
  const auto rb = simulate_network(basic, nodes, {{0, 2}, {1, 2}}, r1);
  const auto rr = simulate_network(rts, nodes, {{0, 2}, {1, 2}}, r2);
  EXPECT_GT(rb.aggregate_throughput_mbps, rr.aggregate_throughput_mbps);
}

TEST(NetSim, HigherPhyRateRaisesThroughput) {
  Rng rng(7);
  NetworkConfig slow = base_config();
  slow.data_rate_mbps = 6.0;
  slow.sinr_threshold_db = 3.0;
  NetworkConfig fast = base_config();
  fast.data_rate_mbps = 54.0;
  fast.sinr_threshold_db = 20.0;
  const auto rs = simulate_network(slow, pair_topology(10.0), {{0, 1}}, rng);
  const auto rf = simulate_network(fast, pair_topology(10.0), {{0, 1}}, rng);
  EXPECT_GT(rf.aggregate_throughput_mbps, 1.5 * rs.aggregate_throughput_mbps);
}

TEST(NetSim, ManyContendersStillDeliver) {
  Rng rng(8);
  // Eight stations around an AP, all within carrier sense.
  std::vector<NodeConfig> nodes(9);
  nodes[8].position = {0.0, 0.0};
  std::vector<Flow> flows;
  for (std::size_t i = 0; i < 8; ++i) {
    const double angle = static_cast<double>(i) * 0.785;
    nodes[i].position = {8.0 * std::cos(angle), 8.0 * std::sin(angle)};
    flows.push_back({i, 8});
  }
  NetworkConfig cfg = base_config();
  cfg.duration_s = 1.0;
  const auto r = simulate_network(cfg, nodes, flows, rng);
  EXPECT_GT(r.aggregate_throughput_mbps, 8.0);
  // Every flow makes progress (no starvation).
  for (const auto& f : r.flows) {
    EXPECT_GT(f.delivered, 10u) << "a flow starved";
  }
}

TEST(NetSim, CaptureLetsTheStrongFrameSurvive) {
  // One sender is much closer to the receiver: even with overlap its
  // frame clears the SINR threshold and captures.
  Rng rng(9);
  std::vector<NodeConfig> nodes(3);
  nodes[0].position = {197.0, 0.0};  // near the receiver
  nodes[1].position = {0.0, 0.0};    // far (hidden from node 0)
  nodes[2].position = {200.0, 0.0};  // receiver
  NetworkConfig cfg = base_config();
  cfg.duration_s = 2.0;
  const auto r = simulate_network(cfg, nodes, {{0, 2}, {1, 2}}, rng);
  // The near flow rides over the far one's interference.
  EXPECT_GT(r.flows[0].throughput_mbps, 10.0 * std::max(r.flows[1].throughput_mbps, 0.01));
}

TEST(NetSim, FairnessIndexNearOneForSymmetricContenders) {
  Rng rng(31);
  std::vector<NodeConfig> nodes(5);
  std::vector<Flow> flows;
  for (std::size_t i = 0; i < 4; ++i) {
    const double angle = 1.5708 * static_cast<double>(i);
    nodes[i].position = {9.0 * std::cos(angle), 9.0 * std::sin(angle)};
    flows.push_back({i, 4});
  }
  NetworkConfig cfg = base_config();
  cfg.duration_s = 2.0;
  const auto r = simulate_network(cfg, nodes, flows, rng);
  EXPECT_GT(r.jain_fairness(), 0.9);
}

TEST(NetSim, FairnessCollapsesUnderCapture) {
  Rng rng(32);
  std::vector<NodeConfig> nodes(3);
  nodes[0].position = {197.0, 0.0};
  nodes[1].position = {0.0, 0.0};
  nodes[2].position = {200.0, 0.0};
  NetworkConfig cfg = base_config();
  cfg.duration_s = 2.0;
  const auto r = simulate_network(cfg, nodes, {{0, 2}, {1, 2}}, rng);
  EXPECT_LT(r.jain_fairness(), 0.75);
}

TEST(NetSim, AgreesWithBianchiWhenEveryoneHearsEveryone) {
  // The event-driven simulator collapses to classic single-cell DCF when
  // all stations are in carrier-sense range: its aggregate throughput
  // must sit near the Bianchi closed form.
  Rng rng(30);
  const std::size_t n_sta = 8;
  std::vector<NodeConfig> nodes(n_sta + 1);
  std::vector<Flow> flows;
  for (std::size_t i = 0; i < n_sta; ++i) {
    const double angle = 6.2832 * static_cast<double>(i) / n_sta;
    nodes[i].position = {8.0 * std::cos(angle), 8.0 * std::sin(angle)};
    flows.push_back({i, n_sta});
  }
  NetworkConfig cfg = base_config();
  cfg.duration_s = 3.0;
  const auto sim = simulate_network(cfg, nodes, flows, rng);

  mac::BianchiInput model;
  model.n_stations = n_sta;
  model.data_rate_mbps = cfg.data_rate_mbps;
  model.basic_rate_mbps = cfg.basic_rate_mbps;
  model.payload_bytes = cfg.payload_bytes;
  const auto theory = mac::bianchi_saturation(model);

  EXPECT_NEAR(sim.aggregate_throughput_mbps, theory.throughput_mbps,
              0.25 * theory.throughput_mbps);
}

TEST(NetSim, PoissonFlowDeliversItsOfferedLoad) {
  Rng rng(20);
  NetworkConfig cfg = base_config();
  cfg.duration_s = 4.0;
  const auto r = simulate_network(cfg, pair_topology(10.0),
                                  {{0, 1, 200.0}}, rng);
  // 200 pkt/s of 1000 B = 1.6 Mbps offered on a ~15 Mbps link: nearly all
  // delivered, with small queueing delay.
  EXPECT_GT(r.flows[0].delivered, 600u);
  EXPECT_NEAR(r.flows[0].throughput_mbps, 1.6, 0.4);
  EXPECT_GT(r.flows[0].mean_delay_s, 1e-4);
  EXPECT_LT(r.flows[0].mean_delay_s, 5e-3);
}

TEST(NetSim, QueueingDelayGrowsWithLoad) {
  NetworkConfig cfg = base_config();
  cfg.duration_s = 4.0;
  Rng r1(21);
  const auto light = simulate_network(cfg, pair_topology(10.0),
                                      {{0, 1, 100.0}}, r1);
  Rng r2(21);
  const auto heavy = simulate_network(cfg, pair_topology(10.0),
                                      {{0, 1, 1500.0}}, r2);
  EXPECT_GT(heavy.flows[0].mean_delay_s, light.flows[0].mean_delay_s);
}

TEST(NetSim, OverloadedPoissonFlowSaturates) {
  Rng rng(22);
  NetworkConfig cfg = base_config();
  cfg.duration_s = 2.0;
  // Offer 10x what the link can carry: throughput pins at the saturation
  // rate and delay blows up.
  const auto r = simulate_network(cfg, pair_topology(10.0),
                                  {{0, 1, 20000.0}}, rng);
  EXPECT_GT(r.flows[0].throughput_mbps, 13.0);
  EXPECT_LT(r.flows[0].throughput_mbps, 18.0);
  EXPECT_GT(r.flows[0].mean_delay_s, 0.05);
}

TEST(NetSim, LightPoissonCoexistsWithSaturatedNeighbor) {
  Rng rng(23);
  std::vector<NodeConfig> nodes(3);
  nodes[0].position = {0.0, 0.0};
  nodes[1].position = {5.0, 0.0};
  nodes[2].position = {2.5, 4.0};
  NetworkConfig cfg = base_config();
  cfg.duration_s = 3.0;
  const auto r = simulate_network(cfg, nodes,
                                  {{0, 2, 0.0}, {1, 2, 50.0}}, rng);
  // The light flow should still get essentially all its packets through.
  const double offered = 50.0 * 1000.0 * 8.0 / 1e6;
  EXPECT_GT(r.flows[1].throughput_mbps, 0.8 * offered);
}

NetworkConfig per_model_config() {
  NetworkConfig cfg;
  cfg.duration_s = 0.5;
  cfg.error_model.model = RxModel::kPerModel;
  return cfg;
}

TEST(NetSimPerModel, CleanLinkStillDelivers) {
  // At 10 m the SINR sits far above every waterfall: the PER model must
  // agree with the threshold model that the link is essentially perfect.
  Rng rng(40);
  const auto r =
      simulate_network(per_model_config(), pair_topology(10.0), {{0, 1}}, rng);
  EXPECT_GT(r.aggregate_throughput_mbps, 13.0);
  EXPECT_LT(r.data_failure_rate(), 0.02);
}

TEST(NetSimPerModel, GracefulDegradationInsteadOfCliff) {
  // The threshold model is a cliff: 100% of frames deliver one metre,
  // 0% the next. The PER model must produce a partial-loss regime where
  // frames both succeed AND fail at the same distance.
  NetworkConfig cfg = per_model_config();
  double d = 20.0;
  while (snr_at_distance_db(cfg.pathloss, d, 17.0, cfg.bandwidth_hz) > 12.0) {
    d *= 1.1;
  }
  Rng rng(41);
  const auto r = simulate_network(cfg, pair_topology(d), {{0, 1}}, rng);
  EXPECT_GT(r.total_delivered, 50u);
  EXPECT_GT(r.data_failures, 20u);
  // And loss grows monotonically with distance.
  Rng rng2(41);
  const auto far = simulate_network(cfg, pair_topology(1.6 * d), {{0, 1}}, rng2);
  EXPECT_LT(far.total_delivered, r.total_delivered);
}

TEST(NetSimPerModel, LongerPayloadsFailMoreOften) {
  // Payload-length PER scaling must reach the simulator: at a marginal
  // SNR a 1500-byte frame dies more often than a 200-byte frame.
  NetworkConfig cfg = per_model_config();
  double d = 20.0;
  while (snr_at_distance_db(cfg.pathloss, d, 17.0, cfg.bandwidth_hz) > 13.0) {
    d *= 1.1;
  }
  cfg.payload_bytes = 200;
  Rng r1(42);
  const auto small = simulate_network(cfg, pair_topology(d), {{0, 1}}, r1);
  cfg.payload_bytes = 1500;
  Rng r2(42);
  const auto large = simulate_network(cfg, pair_topology(d), {{0, 1}}, r2);
  EXPECT_GT(large.data_failure_rate(), small.data_failure_rate());
}

TEST(NetSimPerModel, DeterministicForSeed) {
  NetworkConfig cfg = per_model_config();
  cfg.error_model.shadowing_sigma_db = 6.0;
  cfg.duration_s = 0.3;
  Rng r1(43);
  Rng r2(43);
  const auto setup = make_hidden_terminal_setup(150.0);
  const auto a = simulate_network(cfg, setup.nodes, setup.flows, r1);
  const auto b = simulate_network(cfg, setup.nodes, setup.flows, r2);
  EXPECT_EQ(a.total_delivered, b.total_delivered);
  EXPECT_EQ(a.data_failures, b.data_failures);
  EXPECT_EQ(a.flows[0].retries, b.flows[0].retries);
  EXPECT_DOUBLE_EQ(a.aggregate_throughput_mbps, b.aggregate_throughput_mbps);
}

TEST(NetSimPerModel, ShadowingSpreadsLinkBudgets) {
  // With 8 dB shadowing some seeds draw a much worse link than the
  // deterministic path loss: outcomes across seeds must differ.
  NetworkConfig cfg = per_model_config();
  cfg.error_model.shadowing_sigma_db = 8.0;
  cfg.duration_s = 0.3;
  double d = 20.0;
  while (snr_at_distance_db(cfg.pathloss, d, 17.0, cfg.bandwidth_hz) > 15.0) {
    d *= 1.1;
  }
  std::uint64_t min_del = UINT64_MAX, max_del = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    const auto r = simulate_network(cfg, pair_topology(d), {{0, 1}}, rng);
    min_del = std::min(min_del, r.total_delivered);
    max_del = std::max(max_del, r.total_delivered);
  }
  EXPECT_LT(min_del, max_del);
}

TEST(NetSimPerModel, DsssGenerationIsSupported) {
  NetworkConfig cfg = per_model_config();
  cfg.generation = mac::PhyGeneration::kDsss;
  cfg.data_rate_mbps = 2.0;
  cfg.basic_rate_mbps = 1.0;
  cfg.payload_bytes = 400;
  cfg.duration_s = 0.3;
  Rng rng(44);
  const auto r = simulate_network(cfg, pair_topology(10.0), {{0, 1}}, rng);
  EXPECT_GT(r.total_delivered, 20u);
}

TEST(NetSimPerModel, CollisionsStillDestroyFramesViaCaptureGate) {
  // The PER curves scale with payload length, so a 20-byte RTS at the
  // ~0 dB SINR of an equal-power collision would survive most draws on
  // its own; the preamble-capture gate must kill it like the threshold
  // model does. With RTS/CTS protecting the data, collision losses then
  // land on cheap RTS retries, not on data frames.
  NetworkConfig cfg = per_model_config();
  cfg.rts_cts = true;
  cfg.duration_s = 0.5;
  std::vector<NodeConfig> nodes(7);
  std::vector<Flow> flows;
  nodes[0].position = {0.0, 0.0};
  for (std::size_t c = 1; c < nodes.size(); ++c) {
    nodes[c].position = {c % 2 ? 14.0 : -14.0, 3.0 * static_cast<double>(c)};
    flows.push_back({c, 0});
  }
  Rng rng(48);
  const auto r = simulate_network(cfg, nodes, flows, rng);
  EXPECT_GT(r.rts_tx_count, 100u);
  // Six saturated stations collide often...
  EXPECT_GT(static_cast<double>(r.rts_failures) /
                static_cast<double>(r.rts_tx_count),
            0.05);
  // ...but protected data frames on clean links almost never fail.
  EXPECT_LT(r.data_failure_rate(), 0.02);
}

TEST(NetSimPerModel, ArfClimbsTheLadderOnACleanLink) {
  NetworkConfig cfg = per_model_config();
  cfg.rate_control = RateControlMode::kArf;
  Rng rng(45);
  const auto good =
      simulate_network(cfg, pair_topology(10.0), {{0, 1}}, rng);
  // ARF starts at 6 Mbps and must climb: mean attempted rate well above
  // the base, and throughput beyond anything 6 Mbps could carry.
  EXPECT_GT(good.flows[0].mean_data_rate_mbps, 30.0);
  EXPECT_GT(good.aggregate_throughput_mbps, 10.0);
}

TEST(NetSimPerModel, ArfBacksOffOnAMarginalLink) {
  NetworkConfig cfg = per_model_config();
  cfg.rate_control = RateControlMode::kArf;
  double d = 20.0;
  while (snr_at_distance_db(cfg.pathloss, d, 17.0, cfg.bandwidth_hz) > 12.0) {
    d *= 1.1;
  }
  Rng rng(46);
  const auto marginal = simulate_network(cfg, pair_topology(d), {{0, 1}}, rng);
  Rng rng2(46);
  const auto good = simulate_network(cfg, pair_topology(10.0), {{0, 1}}, rng2);
  EXPECT_LT(marginal.flows[0].mean_data_rate_mbps,
            good.flows[0].mean_data_rate_mbps);
  EXPECT_GT(marginal.total_delivered, 0u);
}

TEST(NetSimPerModel, FixedRateReportsConfiguredRate) {
  Rng rng(47);
  const auto r =
      simulate_network(base_config(), pair_topology(10.0), {{0, 1}}, rng);
  EXPECT_DOUBLE_EQ(r.flows[0].mean_data_rate_mbps, 24.0);
}

TEST(NetSimPerModel, ArfValidation) {
  Rng rng(48);
  // ARF without the PER model is rejected.
  NetworkConfig cfg = base_config();
  cfg.rate_control = RateControlMode::kArf;
  EXPECT_THROW(simulate_network(cfg, pair_topology(10.0), {{0, 1}}, rng),
               ContractError);
  // ARF outside the OFDM generation is rejected.
  NetworkConfig dsss = per_model_config();
  dsss.rate_control = RateControlMode::kArf;
  dsss.generation = mac::PhyGeneration::kDsss;
  dsss.data_rate_mbps = 2.0;
  dsss.basic_rate_mbps = 1.0;
  EXPECT_THROW(simulate_network(dsss, pair_topology(10.0), {{0, 1}}, rng),
               ContractError);
  // A fixed rate that matches no calibrated curve is rejected up front.
  NetworkConfig odd = per_model_config();
  odd.data_rate_mbps = 17.0;
  EXPECT_THROW(simulate_network(odd, pair_topology(10.0), {{0, 1}}, rng),
               ContractError);
}

TEST(NetSim, Validation) {
  Rng rng(10);
  const NetworkConfig cfg = base_config();
  EXPECT_THROW(simulate_network(cfg, {NodeConfig{}}, {{0, 0}}, rng),
               ContractError);
  EXPECT_THROW(
      simulate_network(cfg, pair_topology(10.0), std::vector<Flow>{}, rng),
      ContractError);
  EXPECT_THROW(simulate_network(cfg, pair_topology(10.0), {{0, 5}}, rng),
               ContractError);
  // Two flows from the same source are rejected.
  std::vector<NodeConfig> nodes(3);
  nodes[1].position = {5.0, 0.0};
  nodes[2].position = {0.0, 5.0};
  EXPECT_THROW(simulate_network(cfg, nodes, {{0, 1}, {0, 2}}, rng),
               ContractError);
}

TEST(NetSim, HiddenSetupGeometry) {
  const auto setup = make_hidden_terminal_setup(100.0);
  ASSERT_EQ(setup.nodes.size(), 3u);
  ASSERT_EQ(setup.flows.size(), 2u);
  EXPECT_DOUBLE_EQ(mesh::distance(setup.nodes[0].position,
                                  setup.nodes[1].position), 100.0);
  EXPECT_DOUBLE_EQ(mesh::distance(setup.nodes[0].position,
                                  setup.nodes[2].position), 50.0);
}

}  // namespace
}  // namespace wlan::net

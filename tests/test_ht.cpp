// Tests for the 802.11n HT MIMO PHY.
#include <gtest/gtest.h>

#include <cmath>

#include "channel/mimo.h"
#include "common/check.h"
#include "common/rng.h"
#include "phy/ht.h"

namespace wlan::phy {
namespace {

TEST(HtMcsTable, HeadlineRates) {
  // MCS 7: 64-QAM 5/6, 1 stream, 20 MHz long GI = 65 Mbps.
  EXPECT_NEAR(ht_data_rate_mbps(7, HtBandwidth::k20MHz, HtGuardInterval::kLong),
              65.0, 1e-9);
  // MCS 15: 2 streams, 40 MHz short GI = 300 Mbps.
  EXPECT_NEAR(ht_data_rate_mbps(15, HtBandwidth::k40MHz, HtGuardInterval::kShort),
              300.0, 1e-9);
  // MCS 31: 4 streams, 40 MHz short GI = 600 Mbps — the paper's headline.
  EXPECT_NEAR(ht_data_rate_mbps(31, HtBandwidth::k40MHz, HtGuardInterval::kShort),
              600.0, 1e-9);
  // MCS 0: BPSK 1/2 single stream = 6.5 Mbps.
  EXPECT_NEAR(ht_data_rate_mbps(0, HtBandwidth::k20MHz, HtGuardInterval::kLong),
              6.5, 1e-9);
}

TEST(HtMcsTable, StreamsFromIndex) {
  EXPECT_EQ(ht_mcs_info(0).n_ss, 1u);
  EXPECT_EQ(ht_mcs_info(8).n_ss, 2u);
  EXPECT_EQ(ht_mcs_info(23).n_ss, 3u);
  EXPECT_EQ(ht_mcs_info(31).n_ss, 4u);
  EXPECT_THROW(ht_mcs_info(32), wlan::ContractError);
}

TEST(HtMcsTable, ToneCountsAndSymbolDurations) {
  EXPECT_EQ(ht_data_tones(HtBandwidth::k20MHz), 52u);
  EXPECT_EQ(ht_data_tones(HtBandwidth::k40MHz), 108u);
  EXPECT_EQ(ht_fft_size(HtBandwidth::k20MHz), 64u);
  EXPECT_EQ(ht_fft_size(HtBandwidth::k40MHz), 128u);
  EXPECT_DOUBLE_EQ(ht_symbol_duration_s(HtGuardInterval::kLong), 4e-6);
  EXPECT_DOUBLE_EQ(ht_symbol_duration_s(HtGuardInterval::kShort), 3.6e-6);
}

TEST(HtPhy, SpectralEfficiencyReaches15) {
  HtConfig cfg;
  cfg.mcs = 31;
  cfg.bandwidth = HtBandwidth::k40MHz;
  cfg.guard = HtGuardInterval::kShort;
  cfg.n_rx = 4;
  const HtPhy phy(cfg);
  EXPECT_NEAR(phy.spectral_efficiency_bps_hz(), 15.0, 1e-9);
}

TEST(HtPhy, ConfigValidation) {
  HtConfig bad;
  bad.mcs = 8;  // 2 streams
  bad.n_rx = 1; // fewer rx antennas than streams
  EXPECT_THROW(HtPhy{bad}, wlan::ContractError);

  HtConfig stbc;
  stbc.mcs = 9;  // 2 streams not allowed for STBC mode
  stbc.scheme = SpatialScheme::kStbc;
  EXPECT_THROW(HtPhy{stbc}, wlan::ContractError);
}

TEST(HtPhy, AntennaDefaults) {
  HtConfig cfg;
  cfg.mcs = 16;  // 3 streams
  const HtPhy phy(cfg);
  EXPECT_EQ(phy.n_tx(), 3u);
  EXPECT_EQ(phy.n_rx(), 3u);

  HtConfig mrc;
  mrc.mcs = 0;
  mrc.scheme = SpatialScheme::kMrc;
  mrc.n_rx = 4;
  const HtPhy phy2(mrc);
  EXPECT_EQ(phy2.n_tx(), 1u);
  EXPECT_EQ(phy2.n_rx(), 4u);
}

struct HtCase {
  unsigned mcs;
  HtBandwidth bw;
  HtGuardInterval gi;
  HtCoding coding;
};

class HtLoopback : public ::testing::TestWithParam<HtCase> {};

TEST_P(HtLoopback, HighSnrFlatChannelRoundTrip) {
  const auto param = GetParam();
  HtConfig cfg;
  cfg.mcs = param.mcs;
  cfg.bandwidth = param.bw;
  cfg.guard = param.gi;
  cfg.coding = param.coding;
  const HtPhy phy(cfg);
  Rng rng(10 + param.mcs);
  const Bytes psdu = rng.random_bytes(300);
  const auto tones = phy.draw_channel(rng, channel::DelayProfile::kFlat);
  const Bytes decoded = phy.simulate_link(psdu, tones, 60.0, rng);
  EXPECT_EQ(decoded, psdu);
}

TEST_P(HtLoopback, HighSnrMultipathRoundTrip) {
  const auto param = GetParam();
  HtConfig cfg;
  cfg.mcs = param.mcs;
  cfg.bandwidth = param.bw;
  cfg.guard = param.gi;
  cfg.coding = param.coding;
  const HtPhy phy(cfg);
  Rng rng(100 + param.mcs);
  const Bytes psdu = rng.random_bytes(200);
  const auto tones = phy.draw_channel(rng, channel::DelayProfile::kOffice);
  const Bytes decoded = phy.simulate_link(psdu, tones, 55.0, rng);
  EXPECT_EQ(decoded, psdu);
}

INSTANTIATE_TEST_SUITE_P(
    McsSweep, HtLoopback,
    ::testing::Values(
        HtCase{0, HtBandwidth::k20MHz, HtGuardInterval::kLong, HtCoding::kBcc},
        HtCase{3, HtBandwidth::k20MHz, HtGuardInterval::kLong, HtCoding::kBcc},
        HtCase{7, HtBandwidth::k20MHz, HtGuardInterval::kShort, HtCoding::kBcc},
        HtCase{8, HtBandwidth::k20MHz, HtGuardInterval::kLong, HtCoding::kBcc},
        HtCase{15, HtBandwidth::k40MHz, HtGuardInterval::kShort, HtCoding::kBcc},
        HtCase{21, HtBandwidth::k20MHz, HtGuardInterval::kLong, HtCoding::kBcc},
        HtCase{31, HtBandwidth::k40MHz, HtGuardInterval::kShort, HtCoding::kBcc},
        HtCase{0, HtBandwidth::k20MHz, HtGuardInterval::kLong, HtCoding::kLdpc},
        HtCase{12, HtBandwidth::k20MHz, HtGuardInterval::kLong, HtCoding::kLdpc},
        HtCase{31, HtBandwidth::k40MHz, HtGuardInterval::kShort, HtCoding::kLdpc}));

// Exhaustive property sweep: every one of the 32 HT MCS indices must
// round-trip at high SNR with its default antenna configuration.
class HtEveryMcs : public ::testing::TestWithParam<unsigned> {};

TEST_P(HtEveryMcs, DecodesAtHighSnr) {
  HtConfig cfg;
  cfg.mcs = GetParam();
  const HtPhy phy(cfg);
  Rng rng(1000 + GetParam());
  const Bytes psdu = rng.random_bytes(120);
  const auto tones = phy.draw_channel(rng, channel::DelayProfile::kOffice);
  EXPECT_EQ(phy.simulate_link(psdu, tones, 55.0, rng), psdu);
}

TEST_P(HtEveryMcs, RateConsistentWithComposition) {
  const HtMcsInfo info = ht_mcs_info(GetParam());
  const double rate =
      ht_data_rate_mbps(GetParam(), HtBandwidth::k20MHz, HtGuardInterval::kLong);
  const double expected = static_cast<double>(52 * info.n_bpsc * info.n_ss) *
                          code_rate_value(info.rate) / 4.0;
  EXPECT_NEAR(rate, expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(All32, HtEveryMcs, ::testing::Range(0u, 32u));

TEST(HtPhy, ZfAndMmseBothDecodeCleanChannels) {
  for (const MimoDetector det : {MimoDetector::kZeroForcing, MimoDetector::kMmse}) {
    HtConfig cfg;
    cfg.mcs = 11;  // 2 streams 16-QAM 1/2
    cfg.detector = det;
    const HtPhy phy(cfg);
    Rng rng(42);
    const Bytes psdu = rng.random_bytes(150);
    const auto tones = phy.draw_channel(rng, channel::DelayProfile::kOffice);
    EXPECT_EQ(phy.simulate_link(psdu, tones, 50.0, rng), psdu);
  }
}

TEST(HtPhy, SicDecodesCleanChannels) {
  HtConfig cfg;
  cfg.mcs = 12;  // 16-QAM 3/4, 2 streams
  cfg.detector = MimoDetector::kMmseSic;
  const HtPhy phy(cfg);
  Rng rng(52);
  const Bytes psdu = rng.random_bytes(200);
  const auto tones = phy.draw_channel(rng, channel::DelayProfile::kOffice);
  EXPECT_EQ(phy.simulate_link(psdu, tones, 50.0, rng), psdu);
}

TEST(HtPhy, SicErrorPropagationShowsInCodedPer) {
  // The ablation finding this test pins down: hard-decision ordered SIC
  // improves raw symbol detection, but in a *coded* block-fading link the
  // wrong-slice cancellations corrupt whole tones with overconfident
  // LLRs, so soft one-shot MMSE wins at the waterfall. (The literature's
  // V-BLAST gains are uncoded-SER gains.) SIC must still work — its PER
  // has to fall with SNR — it just should not be reported as a free win.
  Rng rng(53);
  auto per_with = [&](MimoDetector det, double snr) {
    HtConfig cfg;
    cfg.mcs = 11;  // 2 streams 16-QAM 1/2
    cfg.detector = det;
    const HtPhy phy(cfg);
    int errors = 0;
    const int packets = 100;
    for (int p = 0; p < packets; ++p) {
      const Bytes psdu = rng.random_bytes(100);
      const auto tones = phy.draw_channel(rng, channel::DelayProfile::kOffice);
      if (phy.simulate_link(psdu, tones, snr, rng) != psdu) ++errors;
    }
    return static_cast<double>(errors) / packets;
  };
  const double sic_low = per_with(MimoDetector::kMmseSic, 14.0);
  const double sic_high = per_with(MimoDetector::kMmseSic, 23.0);
  const double mmse_high = per_with(MimoDetector::kMmse, 23.0);
  EXPECT_LT(sic_high, sic_low);        // SIC improves with SNR
  EXPECT_LE(mmse_high, sic_high);      // soft MMSE wins the coded contest
}

TEST(HtPhy, MmseBeatsZfAtLowSnr) {
  // 2x2 spatial multiplexing in fading: MMSE should lose fewer packets.
  Rng rng(43);
  auto per_with = [&](MimoDetector det) {
    HtConfig cfg;
    cfg.mcs = 9;  // QPSK 1/2, 2 streams
    cfg.detector = det;
    const HtPhy phy(cfg);
    int errors = 0;
    const int packets = 60;
    for (int p = 0; p < packets; ++p) {
      const Bytes psdu = rng.random_bytes(100);
      const auto tones = phy.draw_channel(rng, channel::DelayProfile::kOffice);
      if (phy.simulate_link(psdu, tones, 12.0, rng) != psdu) ++errors;
    }
    return static_cast<double>(errors) / packets;
  };
  const double per_zf = per_with(MimoDetector::kZeroForcing);
  const double per_mmse = per_with(MimoDetector::kMmse);
  EXPECT_LE(per_mmse, per_zf + 0.05);
}

TEST(HtPhy, DiversitySchemesBeatSisoInFading) {
  // At an SNR where SISO fades badly, MRC/STBC must cut PER sharply
  // (the paper's range-extension mechanism).
  Rng rng(44);
  auto per_for = [&](SpatialScheme scheme, std::size_t n_rx) {
    HtConfig cfg;
    cfg.mcs = 3;  // 16-QAM 1/2, single stream
    cfg.scheme = scheme;
    cfg.n_rx = n_rx;
    const HtPhy phy(cfg);
    int errors = 0;
    const int packets = 80;
    for (int p = 0; p < packets; ++p) {
      const Bytes psdu = rng.random_bytes(100);
      const auto tones = phy.draw_channel(rng, channel::DelayProfile::kFlat);
      if (phy.simulate_link(psdu, tones, 14.0, rng) != psdu) ++errors;
    }
    return static_cast<double>(errors) / packets;
  };
  const double per_siso = per_for(SpatialScheme::kDirectMap, 1);
  const double per_mrc = per_for(SpatialScheme::kMrc, 2);
  const double per_stbc = per_for(SpatialScheme::kStbc, 1);
  EXPECT_GT(per_siso, 0.1);            // flat Rayleigh hurts SISO
  EXPECT_LT(per_mrc, per_siso * 0.5);  // diversity order 2
  EXPECT_LT(per_stbc, per_siso);       // order 2 but 3 dB power split
}

TEST(HtPhy, BeamformingBeatsOpenLoopSingleStream) {
  Rng rng(45);
  auto per_for = [&](SpatialScheme scheme, std::size_t n_tx, std::size_t n_rx) {
    HtConfig cfg;
    cfg.mcs = 3;
    cfg.scheme = scheme;
    cfg.n_tx = n_tx;
    cfg.n_rx = n_rx;
    const HtPhy phy(cfg);
    int errors = 0;
    const int packets = 60;
    for (int p = 0; p < packets; ++p) {
      const Bytes psdu = rng.random_bytes(100);
      const auto tones = phy.draw_channel(rng, channel::DelayProfile::kOffice);
      if (phy.simulate_link(psdu, tones, 10.0, rng) != psdu) ++errors;
    }
    return static_cast<double>(errors) / packets;
  };
  // 2x1 SVD beamforming vs 1x1.
  const double per_bf = per_for(SpatialScheme::kBeamforming, 2, 1);
  const double per_siso = per_for(SpatialScheme::kDirectMap, 0, 1);
  EXPECT_LT(per_bf, per_siso);
}

TEST(HtPhy, EstimatedCsiStillDecodesAtHighSnr) {
  HtConfig cfg;
  cfg.mcs = 12;  // 2 streams
  cfg.ideal_csi = false;
  const HtPhy phy(cfg);
  Rng rng(60);
  const Bytes psdu = rng.random_bytes(200);
  const auto tones = phy.draw_channel(rng, channel::DelayProfile::kOffice);
  EXPECT_EQ(phy.simulate_link(psdu, tones, 45.0, rng), psdu);
}

TEST(HtPhy, EstimatedCsiCostsAFractionOfADecibel) {
  // HT-LTF estimation noise should cost a little PER at the waterfall —
  // measurably worse than genie CSI, but nowhere near a collapse.
  Rng rng(61);
  auto per_with = [&](bool ideal) {
    HtConfig cfg;
    cfg.mcs = 11;  // 16-QAM 1/2, 2 streams
    cfg.ideal_csi = ideal;
    const HtPhy phy(cfg);
    int errors = 0;
    const int packets = 150;
    for (int p = 0; p < packets; ++p) {
      const Bytes psdu = rng.random_bytes(100);
      const auto tones = phy.draw_channel(rng, channel::DelayProfile::kOffice);
      if (phy.simulate_link(psdu, tones, 17.0, rng) != psdu) ++errors;
    }
    return static_cast<double>(errors) / packets;
  };
  const double per_genie = per_with(true);
  const double per_est = per_with(false);
  EXPECT_GE(per_est, per_genie - 0.03);  // estimation never helps
  EXPECT_LT(per_est, per_genie + 0.25);  // and costs only a little
}

TEST(HtPhy, SymbolCountLdpcVsBcc) {
  HtConfig bcc;
  bcc.mcs = 0;
  const HtPhy phy_bcc(bcc);
  HtConfig ldpc = bcc;
  ldpc.coding = HtCoding::kLdpc;
  const HtPhy phy_ldpc(ldpc);
  // Both must cover the PSDU; LDPC pads to whole codewords.
  EXPECT_GE(phy_ldpc.n_symbols_for_psdu(500) + 2,
            phy_bcc.n_symbols_for_psdu(500));
}

TEST(HtPhy, PpduDurationIncludesHtPreamble) {
  HtConfig cfg;
  cfg.mcs = 31;
  cfg.bandwidth = HtBandwidth::k40MHz;
  cfg.guard = HtGuardInterval::kShort;
  cfg.n_rx = 4;
  const HtPhy phy(cfg);
  // Preamble: 32 us + 4 LTFs x 4 us = 48 us minimum.
  EXPECT_GT(phy.ppdu_duration_s(100), 48e-6);
}

TEST(HtPhy, ChannelDimensionMismatchThrows) {
  HtConfig cfg;
  cfg.mcs = 8;  // 2 streams
  const HtPhy phy(cfg);
  Rng rng(46);
  // Wrong antenna count.
  const auto tones =
      channel::mimo_ofdm_channel(rng, 1, 1, channel::DelayProfile::kFlat, 20e6, 64);
  const Bytes psdu(10, 0);
  EXPECT_THROW(phy.simulate_link(psdu, tones, 30.0, rng), wlan::ContractError);
}

}  // namespace
}  // namespace wlan::phy

// Workspace arena: zero steady-state allocations on the waveform link
// hot paths, bounded per-trial allocation on the HT path, and the
// 1-vs-8-jobs batch determinism re-check with workspaces enabled.
//
// The counted regions run real TX -> AWGN -> RX round trips and measure
// the global operator-new delta via support/alloc_hook. Correctness
// (decode matches at high SNR) is checked OUTSIDE the counted region so
// a passing assertion can never hide an allocation.
#include <gtest/gtest.h>

#include <cstddef>

#include "channel/awgn.h"
#include "common/bits.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/link.h"
#include "dsp/ops.h"
#include "par/pool.h"
#include "phy/cck.h"
#include "phy/dsss.h"
#include "phy/ht.h"
#include "phy/ofdm.h"
#include "phy/workspace.h"
#include "support/alloc_hook.h"

namespace wlan {
namespace {

constexpr double kHighSnrDb = 30.0;

// One OFDM TX -> AWGN -> RX round trip leasing every buffer from `ws`.
// Returns the number of byte errors (checked outside counted regions).
std::size_t ofdm_round_trip(const phy::OfdmPhy& phy, std::size_t psdu_bytes,
                            Rng& rng, phy::Workspace& ws) {
  auto psdu = ws.bits(psdu_bytes);
  rng.fill_bytes(*psdu);
  auto wave = ws.cvec(0);
  phy.transmit_into(*psdu, *wave, ws);
  const double noise_var =
      dsp::mean_power(*wave) / db_to_lin(kHighSnrDb);
  channel::add_awgn(*wave, rng, noise_var);
  auto decoded = ws.bits(0);
  phy.receive_into(*wave, psdu_bytes, noise_var, *decoded, ws);
  std::size_t errors = 0;
  for (std::size_t i = 0; i < psdu_bytes; ++i) {
    if ((*psdu)[i] != (*decoded)[i]) ++errors;
  }
  return errors;
}

std::size_t dsss_round_trip(const phy::DsssModem& modem, phy::DsssRate rate,
                            std::size_t n_bits, Rng& rng,
                            phy::Workspace& ws) {
  auto tx_bits = ws.bits(n_bits);
  rng.fill_bits(*tx_bits);
  auto wave = ws.cvec(0);
  modem.modulate_into(*tx_bits, *wave);
  const double noise_var = dsp::mean_power(*wave) / db_to_lin(kHighSnrDb);
  channel::add_awgn(*wave, rng, noise_var);
  wave->resize((n_bits / phy::dsss_bits_per_symbol(rate) + 1) *
               modem.chips_per_symbol());
  auto rx_bits = ws.bits(0);
  modem.demodulate_into(*wave, *rx_bits);
  return hamming_distance(*tx_bits, *rx_bits);
}

std::size_t cck_round_trip(const phy::CckModem& modem, phy::CckRate rate,
                           std::size_t n_bits, Rng& rng, phy::Workspace& ws) {
  auto tx_bits = ws.bits(n_bits);
  rng.fill_bits(*tx_bits);
  auto wave = ws.cvec(0);
  modem.modulate_into(*tx_bits, *wave);
  const double noise_var = dsp::mean_power(*wave) / db_to_lin(kHighSnrDb);
  channel::add_awgn(*wave, rng, noise_var);
  wave->resize((n_bits / phy::cck_bits_per_symbol(rate) + 1) * 8);
  auto rx_bits = ws.bits(0);
  modem.demodulate_into(*wave, *rx_bits);
  return hamming_distance(*tx_bits, *rx_bits);
}

TEST(Workspace, OfdmRoundTripAllocFreeOnceWarmAllRates) {
  constexpr std::size_t kPsduBytes = 400;
  for (const phy::OfdmMcs mcs : phy::kAllOfdmMcs) {
    const phy::OfdmPhy ofdm(mcs);
    phy::Workspace ws;
    Rng rng(0xABCDu + static_cast<std::uint64_t>(mcs));
    // Two warm-up trials size every pooled buffer and the FFT plan.
    ofdm_round_trip(ofdm, kPsduBytes, rng, ws);
    ofdm_round_trip(ofdm, kPsduBytes, rng, ws);
    const std::size_t before = testsupport::allocation_count();
    const std::size_t errors = ofdm_round_trip(ofdm, kPsduBytes, rng, ws);
    const std::size_t after = testsupport::allocation_count();
    EXPECT_EQ(after - before, 0u)
        << "OFDM MCS " << static_cast<int>(mcs)
        << " allocated in steady state";
    EXPECT_EQ(errors, 0u) << "OFDM MCS " << static_cast<int>(mcs)
                          << " failed to decode at " << kHighSnrDb << " dB";
  }
}

TEST(Workspace, DsssRoundTripAllocFreeOnceWarm) {
  for (const phy::DsssRate rate :
       {phy::DsssRate::k1Mbps, phy::DsssRate::k2Mbps}) {
    phy::DsssModem::Config config;
    config.rate = rate;
    const phy::DsssModem modem(config);
    phy::Workspace ws;
    Rng rng(0x5117u);
    dsss_round_trip(modem, rate, 512, rng, ws);
    dsss_round_trip(modem, rate, 512, rng, ws);
    const std::size_t before = testsupport::allocation_count();
    const std::size_t errors = dsss_round_trip(modem, rate, 512, rng, ws);
    const std::size_t after = testsupport::allocation_count();
    EXPECT_EQ(after - before, 0u) << "DSSS allocated in steady state";
    EXPECT_EQ(errors, 0u);
  }
}

TEST(Workspace, CckRoundTripAllocFreeOnceWarm) {
  for (const phy::CckRate rate :
       {phy::CckRate::k5_5Mbps, phy::CckRate::k11Mbps}) {
    const phy::CckModem modem(rate);
    phy::Workspace ws;
    Rng rng(0xCC5u);
    cck_round_trip(modem, rate, 512, rng, ws);
    cck_round_trip(modem, rate, 512, rng, ws);
    const std::size_t before = testsupport::allocation_count();
    const std::size_t errors = cck_round_trip(modem, rate, 512, rng, ws);
    const std::size_t after = testsupport::allocation_count();
    EXPECT_EQ(after - before, 0u) << "CCK allocated in steady state";
    EXPECT_EQ(errors, 0u);
  }
}

// The HT path leases its coding/symbol scratch but still allocates small
// per-packet detector state (channel matrices, SVD — see ht.h). Steady
// state must be flat: every warm trial allocates exactly as much as the
// previous one, i.e. the hot loops themselves no longer churn.
TEST(Workspace, HtSteadyStateAllocationIsFlat) {
  phy::HtConfig config;
  config.mcs = 11;  // 2 streams, 16-QAM 1/2
  const phy::HtPhy ht(config);
  phy::Workspace ws;
  Rng rng(0x117u);
  Bits psdu(200);
  Bytes decoded;
  auto trial = [&]() {
    rng.fill_bytes(psdu);
    const auto tones = ht.draw_channel(rng, channel::DelayProfile::kOffice);
    ht.simulate_link_into(psdu, tones, kHighSnrDb, rng, decoded, ws);
  };
  trial();
  trial();
  const std::size_t c0 = testsupport::allocation_count();
  trial();
  const std::size_t c1 = testsupport::allocation_count();
  trial();
  const std::size_t c2 = testsupport::allocation_count();
  EXPECT_EQ(c1 - c0, c2 - c1) << "HT per-trial allocation count grew";
}

// Batch determinism with workspaces enabled: per-trial counter-derived
// seeds plus thread-local arenas make the result a pure function of the
// caller's Rng state, independent of worker count.
TEST(Workspace, LinkResultsIndependentOfJobCount) {
  auto run_all = [](unsigned jobs) {
    par::set_default_jobs(jobs);
    Rng rng(99);
    const LinkResult ofdm =
        run_ofdm_link(phy::OfdmMcs::k24Mbps, 120, 48, 8.0, rng,
                      ChannelSpec::tdl(channel::DelayProfile::kOffice));
    phy::HtConfig config;
    config.mcs = 3;
    const LinkResult ht = run_ht_link(config, 120, 32, 12.0, rng,
                                      channel::DelayProfile::kOffice);
    return std::pair{ofdm, ht};
  };
  const auto [ofdm1, ht1] = run_all(1);
  const auto [ofdm8, ht8] = run_all(8);
  par::set_default_jobs(0);
  EXPECT_EQ(ofdm1.packets, ofdm8.packets);
  EXPECT_EQ(ofdm1.packet_errors, ofdm8.packet_errors);
  EXPECT_EQ(ofdm1.bits, ofdm8.bits);
  EXPECT_EQ(ofdm1.bit_errors, ofdm8.bit_errors);
  EXPECT_EQ(ht1.packets, ht8.packets);
  EXPECT_EQ(ht1.packet_errors, ht8.packet_errors);
  EXPECT_EQ(ht1.bits, ht8.bits);
  EXPECT_EQ(ht1.bit_errors, ht8.bit_errors);
}

}  // namespace
}  // namespace wlan

// Tests for the 802.11a/n block interleaver.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "common/check.h"
#include "common/rng.h"
#include "phy/interleaver.h"

namespace wlan::phy {
namespace {

struct InterleaverCase {
  std::size_t n_cbps;
  std::size_t n_bpsc;
  std::size_t n_col;
};

class InterleaverSizes : public ::testing::TestWithParam<InterleaverCase> {};

TEST_P(InterleaverSizes, IsAPermutation) {
  const auto [n_cbps, n_bpsc, n_col] = GetParam();
  const Interleaver il(n_cbps, n_bpsc, n_col);
  // Interleave the identity sequence of indices encoded as bits 0/1 is not
  // enough: instead feed each unit vector and verify it lands somewhere
  // unique (i.e. the map is a bijection).
  Bits probe(n_cbps, 0);
  std::set<std::size_t> targets;
  for (std::size_t k = 0; k < n_cbps; ++k) {
    probe[k] = 1;
    const Bits out = il.interleave(probe);
    probe[k] = 0;
    std::size_t pos = n_cbps;
    for (std::size_t j = 0; j < n_cbps; ++j) {
      if (out[j]) {
        pos = j;
        break;
      }
    }
    ASSERT_LT(pos, n_cbps);
    targets.insert(pos);
  }
  EXPECT_EQ(targets.size(), n_cbps);
}

TEST_P(InterleaverSizes, DeinterleaveInvertsInterleave) {
  const auto [n_cbps, n_bpsc, n_col] = GetParam();
  const Interleaver il(n_cbps, n_bpsc, n_col);
  Rng rng(1);
  const Bits bits = rng.random_bits(n_cbps);
  const Bits inter = il.interleave(bits);
  // Deinterleave operates on LLRs; encode bits as +-1.
  RVec llrs(n_cbps);
  for (std::size_t i = 0; i < n_cbps; ++i) llrs[i] = inter[i] ? -1.0 : 1.0;
  const RVec restored = il.deinterleave(llrs);
  for (std::size_t i = 0; i < n_cbps; ++i) {
    EXPECT_EQ(restored[i] < 0.0 ? 1 : 0, bits[i]) << "position " << i;
  }
}

TEST_P(InterleaverSizes, AdjacentBitsLandFarApart) {
  // The first permutation must separate adjacent coded bits by at least
  // one interleaver row (n_cbps / n_col positions modulo wrap).
  const auto [n_cbps, n_bpsc, n_col] = GetParam();
  const Interleaver il(n_cbps, n_bpsc, n_col);
  Bits probe(n_cbps, 0);
  std::vector<std::size_t> pos(n_cbps);
  for (std::size_t k = 0; k < n_cbps; ++k) {
    probe[k] = 1;
    const Bits out = il.interleave(probe);
    probe[k] = 0;
    for (std::size_t j = 0; j < n_cbps; ++j) {
      if (out[j]) pos[k] = j;
    }
  }
  const std::size_t n_bits_per_tone = n_bpsc;
  std::size_t min_sep = n_cbps;
  for (std::size_t k = 0; k + 1 < n_cbps; ++k) {
    const std::size_t tone_a = pos[k] / n_bits_per_tone;
    const std::size_t tone_b = pos[k + 1] / n_bits_per_tone;
    const std::size_t sep =
        tone_a > tone_b ? tone_a - tone_b : tone_b - tone_a;
    if (sep > 0) min_sep = std::min(min_sep, sep);
    // Adjacent coded bits never share a subcarrier.
    EXPECT_NE(tone_a, tone_b) << "adjacent bits on one tone, k=" << k;
  }
  EXPECT_GE(min_sep, 2u);
}

INSTANTIATE_TEST_SUITE_P(
    StandardSizes, InterleaverSizes,
    ::testing::Values(InterleaverCase{48, 1, 16},    // 11a BPSK
                      InterleaverCase{96, 2, 16},    // 11a QPSK
                      InterleaverCase{192, 4, 16},   // 11a 16-QAM
                      InterleaverCase{288, 6, 16},   // 11a 64-QAM
                      InterleaverCase{52, 1, 13},    // 11n 20 MHz BPSK
                      InterleaverCase{312, 6, 13},   // 11n 20 MHz 64-QAM
                      InterleaverCase{108, 1, 18},   // 11n 40 MHz BPSK
                      InterleaverCase{648, 6, 18})); // 11n 40 MHz 64-QAM

TEST(Interleaver, RejectsBadGeometry) {
  EXPECT_THROW(Interleaver(50, 1, 16), ContractError);   // not multiple of 16
  EXPECT_THROW(Interleaver(0, 1, 16), ContractError);
  EXPECT_THROW(Interleaver(48, 0, 16), ContractError);
}

TEST(Interleaver, RejectsWrongBlockSize) {
  const Interleaver il(48, 1);
  const Bits bits(47, 0);
  EXPECT_THROW(il.interleave(bits), ContractError);
  const RVec llrs(49, 0.0);
  EXPECT_THROW(il.deinterleave(llrs), ContractError);
}

}  // namespace
}  // namespace wlan::phy

// Tests for MAC timing, the DCF simulator, and power-save mode.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "mac/dcf.h"
#include "mac/psm.h"
#include "mac/timing.h"

namespace wlan::mac {
namespace {

TEST(Timing, IfsValues) {
  const MacTiming dsss = mac_timing(PhyGeneration::kDsss);
  EXPECT_DOUBLE_EQ(dsss.sifs_s, 10e-6);
  EXPECT_DOUBLE_EQ(dsss.slot_s, 20e-6);
  EXPECT_DOUBLE_EQ(dsss.difs_s(), 50e-6);
  const MacTiming ofdm = mac_timing(PhyGeneration::kOfdm);
  EXPECT_DOUBLE_EQ(ofdm.sifs_s, 16e-6);
  EXPECT_DOUBLE_EQ(ofdm.difs_s(), 34e-6);
  EXPECT_EQ(ofdm.cw_min, 15u);
  EXPECT_EQ(dsss.cw_min, 31u);
}

TEST(Timing, DsssPpduDuration) {
  // 1500+28 bytes at 1 Mbps + 192 us preamble.
  const double t = dsss_ppdu_duration_s(1.0, 1528);
  EXPECT_NEAR(t, 192e-6 + 1528 * 8e-6, 1e-12);
  EXPECT_NEAR(dsss_ppdu_duration_s(11.0, 1528, true),
              96e-6 + 1528 * 8.0 / 11e6, 1e-12);
}

TEST(Timing, OfdmPpduMatchesPhyExample) {
  // Same example as the PHY test: 1000 bytes at 54 Mbps = 172 us, with
  // MAC header 28 bytes -> 1028 bytes: ceil(8246/216) = 39 symbols.
  EXPECT_NEAR(ofdm_ppdu_duration_s(54.0, 1028), 20e-6 + 39 * 4e-6, 1e-12);
}

TEST(Timing, HtPreambleGrowsWithStreams) {
  const double one = ht_ppdu_duration_s(65.0, 1000, 1, false);
  const double four = ht_ppdu_duration_s(260.0, 1000, 4, false);
  // 3 extra HT-LTFs = 12 us more preamble (data part shrinks with rate).
  EXPECT_GT(four, 32e-6 + 16e-6);
  EXPECT_GT(one, 32e-6 + 4e-6);
}

TEST(Timing, ControlFrameUsesLegacyOfdm) {
  const double ack = control_duration_s(PhyGeneration::kHt, kAckBytes, 24.0);
  // 14 bytes at 24 Mbps: 20 + ceil(134/96)*4 = 28 us.
  EXPECT_NEAR(ack, 28e-6, 1e-12);
}

TEST(Dcf, SingleStationMatchesAnalyticBound) {
  DcfConfig cfg;
  cfg.n_stations = 1;
  cfg.duration_s = 4.0;
  Rng rng(1);
  const DcfResult r = simulate_dcf(cfg, rng);
  const double bound = dcf_single_station_goodput_mbps(cfg);
  EXPECT_NEAR(r.throughput_mbps, bound, bound * 0.03);
  EXPECT_EQ(r.collisions, 0u);
  EXPECT_EQ(r.dropped, 0u);
}

TEST(Dcf, MacEfficiencyWellBelowPhyRate) {
  // The classic result: 54 Mbps PHY yields roughly 25-30 Mbps of MAC
  // goodput for 1500-byte frames.
  DcfConfig cfg;
  cfg.n_stations = 1;
  cfg.duration_s = 4.0;
  Rng rng(2);
  const DcfResult r = simulate_dcf(cfg, rng);
  EXPECT_GT(r.throughput_mbps, 20.0);
  EXPECT_LT(r.throughput_mbps, 35.0);
}

TEST(Dcf, CollisionProbabilityGrowsWithStations) {
  Rng rng(3);
  double prev = 0.0;
  for (const std::size_t n : {2u, 5u, 15u, 40u}) {
    DcfConfig cfg;
    cfg.n_stations = n;
    cfg.duration_s = 2.0;
    const DcfResult r = simulate_dcf(cfg, rng);
    EXPECT_GT(r.collision_probability, prev);
    prev = r.collision_probability;
  }
  EXPECT_GT(prev, 0.15);
}

TEST(Dcf, AggregateThroughputDegradesGracefully) {
  Rng rng(4);
  DcfConfig one;
  one.n_stations = 1;
  one.duration_s = 2.0;
  DcfConfig many = one;
  many.n_stations = 30;
  const double t1 = simulate_dcf(one, rng).throughput_mbps;
  const double t30 = simulate_dcf(many, rng).throughput_mbps;
  EXPECT_LT(t30, t1);
  EXPECT_GT(t30, t1 * 0.5);  // DCF degrades but does not collapse
}

TEST(Dcf, RtsCtsHelpsWhenCollisionsAreExpensive) {
  Rng rng(5);
  DcfConfig base;
  base.n_stations = 40;
  base.payload_bytes = 2000;
  base.duration_s = 2.0;
  DcfConfig rts = base;
  rts.rts_cts = true;
  const DcfResult r_base = simulate_dcf(base, rng);
  const DcfResult r_rts = simulate_dcf(rts, rng);
  // With many stations and large frames, RTS/CTS throughput should be at
  // least competitive (collisions cost a 20-byte RTS, not a 2 KB frame).
  EXPECT_GT(r_rts.throughput_mbps, r_base.throughput_mbps * 0.9);
}

TEST(Dcf, PacketErrorsReduceThroughputAndCauseRetries) {
  Rng rng(6);
  DcfConfig clean;
  clean.n_stations = 1;
  clean.duration_s = 2.0;
  DcfConfig lossy = clean;
  lossy.packet_error_rate = 0.3;
  const DcfResult r_clean = simulate_dcf(clean, rng);
  const DcfResult r_lossy = simulate_dcf(lossy, rng);
  EXPECT_LT(r_lossy.throughput_mbps, r_clean.throughput_mbps * 0.85);
}

TEST(Dcf, HeavyLossCausesDrops) {
  Rng rng(7);
  DcfConfig cfg;
  cfg.n_stations = 1;
  cfg.packet_error_rate = 0.95;
  cfg.retry_limit = 4;
  cfg.duration_s = 2.0;
  const DcfResult r = simulate_dcf(cfg, rng);
  EXPECT_GT(r.dropped, 0u);
}

TEST(Dcf, AmpduAggregationRecoversMacEfficiency) {
  // The 802.11n insight: at high PHY rates, per-frame overhead dominates;
  // aggregating 16 MPDUs must raise goodput dramatically.
  Rng rng(8);
  DcfConfig single;
  single.generation = PhyGeneration::kHt;
  single.data_rate_mbps = 300.0;
  single.n_ss = 2;
  single.short_gi = true;
  single.n_stations = 1;
  single.duration_s = 2.0;
  DcfConfig aggregated = single;
  aggregated.ampdu_frames = 16;
  const double t1 = simulate_dcf(single, rng).throughput_mbps;
  const double t16 = simulate_dcf(aggregated, rng).throughput_mbps;
  EXPECT_GT(t16, 2.0 * t1);
  EXPECT_GT(t16, 100.0);
}

TEST(Dcf, AmpduPartialLossConservesFrames) {
  // Regression: MPDUs lost inside a partially-delivered A-MPDU used to
  // vanish — neither retried nor counted as dropped. Every offered MPDU
  // must end up delivered, dropped, or still pending.
  for (const double per : {0.0, 0.1, 0.3, 0.6, 0.95}) {
    for (const std::size_t ampdu : {std::size_t{1}, std::size_t{8},
                                    std::size_t{16}}) {
      Rng rng(77);
      DcfConfig cfg;
      cfg.generation = PhyGeneration::kHt;
      cfg.data_rate_mbps = 300.0;
      cfg.n_ss = 2;
      cfg.n_stations = 2;
      cfg.ampdu_frames = ampdu;
      cfg.packet_error_rate = per;
      cfg.retry_limit = 4;
      cfg.duration_s = 1.0;
      const DcfResult r = simulate_dcf(cfg, rng);
      EXPECT_EQ(r.offered_frames,
                r.delivered_frames + r.dropped + r.pending_frames)
          << "per=" << per << " ampdu=" << ampdu;
      if (per > 0.0 && ampdu > 1) {
        // The partial-loss regime actually exercises retransmission.
        EXPECT_GT(r.delivered_frames, 0u);
      }
    }
  }
}

TEST(Dcf, AmpduLossesAreRetriedNotSwallowed) {
  // At 30% subframe loss with block ack, lost MPDUs retry and mostly
  // make it through eventually: the drop count stays far below the
  // number of first-attempt losses, and throughput beats the naive
  // "ok-subframes-only, rest forgotten" accounting which understates
  // delivered frames at high aggregation.
  Rng rng(78);
  DcfConfig cfg;
  cfg.generation = PhyGeneration::kHt;
  cfg.data_rate_mbps = 300.0;
  cfg.n_ss = 2;
  cfg.n_stations = 1;
  cfg.ampdu_frames = 16;
  cfg.packet_error_rate = 0.3;
  cfg.retry_limit = 7;
  cfg.duration_s = 2.0;
  const DcfResult r = simulate_dcf(cfg, rng);
  EXPECT_EQ(r.offered_frames,
            r.delivered_frames + r.dropped + r.pending_frames);
  // With 7 retries at 30% PER the drop probability per MPDU is ~0.3^8.
  EXPECT_LT(static_cast<double>(r.dropped),
            0.01 * static_cast<double>(r.offered_frames));
  EXPECT_GT(static_cast<double>(r.delivered_frames),
            0.95 * static_cast<double>(r.offered_frames -
                                       r.pending_frames));
}

TEST(Dcf, BusyAirtimeFractionSaneAndSaturated) {
  Rng rng(9);
  DcfConfig cfg;
  cfg.n_stations = 10;
  cfg.duration_s = 1.0;
  const DcfResult r = simulate_dcf(cfg, rng);
  EXPECT_GT(r.busy_airtime_fraction, 0.7);
  EXPECT_LE(r.busy_airtime_fraction, 1.0 + 1e-9);
}

TEST(Psm, CamIsAlwaysAwake) {
  PsmConfig cfg;
  cfg.psm_enabled = false;
  cfg.duration_s = 10.0;
  Rng rng(10);
  const PsmResult r = simulate_psm(cfg, rng);
  EXPECT_DOUBLE_EQ(r.time_doze_s, 0.0);
  EXPECT_NEAR(r.time_rx_s + r.time_tx_s + r.time_idle_s, 10.0, 1e-6);
}

TEST(Psm, PsmDozesMostOfTheTimeAtLightLoad) {
  PsmConfig cfg;
  cfg.psm_enabled = true;
  cfg.arrival_rate_pps = 5.0;
  cfg.duration_s = 20.0;
  Rng rng(11);
  const PsmResult r = simulate_psm(cfg, rng);
  EXPECT_GT(r.time_doze_s / cfg.duration_s, 0.9);
  EXPECT_GT(r.delivered, 50u);
}

TEST(Psm, DelayBoundedByBeaconInterval) {
  PsmConfig cfg;
  cfg.psm_enabled = true;
  cfg.arrival_rate_pps = 2.0;
  cfg.duration_s = 30.0;
  Rng rng(12);
  const PsmResult r = simulate_psm(cfg, rng);
  EXPECT_LE(r.max_delay_s, cfg.beacon_interval_s * 1.2);
  EXPECT_GT(r.mean_delay_s, 0.01);  // buffering costs tens of ms
}

TEST(Psm, CamDeliversNearInstantly) {
  PsmConfig cfg;
  cfg.psm_enabled = false;
  cfg.arrival_rate_pps = 2.0;
  cfg.duration_s = 30.0;
  Rng rng(13);
  const PsmResult r = simulate_psm(cfg, rng);
  EXPECT_LT(r.mean_delay_s, 1e-3);
}

TEST(Psm, ListenIntervalTradesDelayForDoze) {
  Rng rng(14);
  PsmConfig every;
  every.psm_enabled = true;
  every.arrival_rate_pps = 1.0;
  every.duration_s = 40.0;
  PsmConfig sparse = every;
  sparse.listen_interval = 4;
  const PsmResult r1 = simulate_psm(every, rng);
  const PsmResult r4 = simulate_psm(sparse, rng);
  EXPECT_GT(r4.mean_delay_s, r1.mean_delay_s);
  EXPECT_GT(r4.time_doze_s, r1.time_doze_s);
}

TEST(Psm, DeliveryCountsTrackArrivals) {
  PsmConfig cfg;
  cfg.psm_enabled = true;
  cfg.arrival_rate_pps = 20.0;
  cfg.duration_s = 20.0;
  Rng rng(15);
  const PsmResult r = simulate_psm(cfg, rng);
  // ~400 expected; allow generous Poisson + tail slack.
  EXPECT_GT(r.delivered, 300u);
  EXPECT_LT(r.delivered, 500u);
}

}  // namespace
}  // namespace wlan::mac

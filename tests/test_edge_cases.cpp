// Edge cases and failure-injection across modules: the inputs that break
// sloppy implementations (tiny/huge payloads, degenerate configs, total
// channel loss, boundary sizes).
#include <gtest/gtest.h>

#include "channel/awgn.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/link.h"
#include "dsp/ops.h"
#include "mac/dcf.h"
#include "mac/psm.h"
#include "phy/ht.h"
#include "phy/ldpc.h"
#include "phy/ofdm.h"
#include "phy/plcp.h"

namespace wlan {
namespace {

class OfdmTinyPsdu : public ::testing::TestWithParam<phy::OfdmMcs> {};

TEST_P(OfdmTinyPsdu, OneBytePsduRoundTrips) {
  const phy::OfdmPhy phy(GetParam());
  Rng rng(1);
  const Bytes psdu = rng.random_bytes(1);
  const CVec wave = phy.transmit(psdu);
  EXPECT_EQ(phy.receive(wave, 1, 1e-9), psdu);
  // One byte always fits one symbol at any MCS.
  EXPECT_EQ(phy.n_symbols_for_psdu(1),
            (16 + 8 + 6 + phy.info().n_dbps - 1) / phy.info().n_dbps);
}

TEST_P(OfdmTinyPsdu, MaxLengthPsduRoundTrips) {
  const phy::OfdmPhy phy(GetParam());
  Rng rng(2);
  const Bytes psdu = rng.random_bytes(2304);  // max MSDU-ish size
  const CVec wave = phy.transmit(psdu);
  EXPECT_EQ(phy.receive(wave, psdu.size(), 1e-9), psdu);
}

INSTANTIATE_TEST_SUITE_P(AllMcs, OfdmTinyPsdu,
                         ::testing::Values(phy::OfdmMcs::k6Mbps,
                                           phy::OfdmMcs::k24Mbps,
                                           phy::OfdmMcs::k54Mbps));

TEST(OfdmEdge, MinimalPaddingCase) {
  // Choose a size leaving the fewest possible pad bits at 6 Mbps
  // (n_dbps 24: 16+8B+6 mod 24 maximal): verify the prefix decode is
  // insensitive to the pad count.
  const phy::OfdmPhy phy(phy::OfdmMcs::k6Mbps);
  Rng rng(3);
  for (std::size_t bytes = 1; bytes <= 12; ++bytes) {
    const Bytes psdu = rng.random_bytes(bytes);
    const CVec wave = phy.transmit(psdu);
    EXPECT_EQ(phy.receive(wave, bytes, 1e-9), psdu) << bytes << " bytes";
  }
}

TEST(HtEdge, OneByteAndOddSizes) {
  for (const std::size_t bytes : {1u, 3u, 17u, 255u}) {
    phy::HtConfig cfg;
    cfg.mcs = 15;
    const phy::HtPhy phy(cfg);
    Rng rng(4 + bytes);
    const Bytes psdu = rng.random_bytes(bytes);
    const auto tones = phy.draw_channel(rng, channel::DelayProfile::kFlat);
    EXPECT_EQ(phy.simulate_link(psdu, tones, 55.0, rng), psdu)
        << bytes << " bytes";
  }
}

TEST(HtEdge, ExtraReceiveAntennasAllStreamCounts) {
  // n_rx strictly greater than n_ss for every stream count.
  for (const unsigned mcs : {0u, 8u, 16u, 24u}) {
    phy::HtConfig cfg;
    cfg.mcs = mcs;
    cfg.n_rx = phy::ht_mcs_info(mcs).n_ss + 2;
    const phy::HtPhy phy(cfg);
    Rng rng(50 + mcs);
    const Bytes psdu = rng.random_bytes(64);
    const auto tones = phy.draw_channel(rng, channel::DelayProfile::kOffice);
    EXPECT_EQ(phy.simulate_link(psdu, tones, 45.0, rng), psdu) << "mcs " << mcs;
  }
}

TEST(HtEdge, LdpcWithTinyPayloadPadsWholeCodeword) {
  phy::HtConfig cfg;
  cfg.mcs = 0;
  cfg.coding = phy::HtCoding::kLdpc;
  const phy::HtPhy phy(cfg);
  Rng rng(5);
  const Bytes psdu = rng.random_bytes(2);
  const auto tones = phy.draw_channel(rng, channel::DelayProfile::kFlat);
  EXPECT_EQ(phy.simulate_link(psdu, tones, 40.0, rng), psdu);
}

TEST(DsssEdge, SingleBitPayload) {
  const phy::DsssModem modem({phy::DsssRate::k1Mbps, true});
  const Bits bits = {1};
  EXPECT_EQ(modem.demodulate(modem.modulate(bits)), bits);
}

TEST(CckEdge, SingleSymbolPayload) {
  const phy::CckModem modem(phy::CckRate::k11Mbps);
  Rng rng(6);
  const Bits bits = rng.random_bits(8);
  EXPECT_EQ(modem.demodulate(modem.modulate(bits)), bits);
}

TEST(PlcpEdge, OneBytePsduOverHrPpdu) {
  Rng rng(7);
  const Bytes psdu = {0xA5};
  CVec chips = phy::hr_transmit_ppdu(phy::CckRate::k5_5Mbps, psdu);
  channel::add_awgn_snr(chips, rng, 18.0);
  const auto decoded = phy::hr_receive_ppdu(chips);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, psdu);
}

TEST(PlcpEdge, LengthExtensionBoundaryBytes) {
  // Sizes around the 11 Mbps microsecond-granularity ambiguity.
  Rng rng(8);
  for (const std::size_t bytes : {3u, 4u, 11u, 12u, 13u, 1499u, 1500u}) {
    const Bits header = phy::encode_plcp_header(phy::HrRate::k11Mbps, bytes);
    const auto decoded = phy::decode_plcp_header(header);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->length_bytes, bytes) << bytes;
  }
}

TEST(LdpcEdge, ConstructionAcrossSeedsStaysFullRank) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 99u, 1234u}) {
    const phy::LdpcCode code(324, 162, seed);
    Rng rng(seed);
    const Bits info = rng.random_bits(162);
    EXPECT_TRUE(code.satisfies_parity(code.encode(info))) << "seed " << seed;
  }
}

TEST(LdpcEdge, HighRateCodeStillWorks) {
  // Rate 5/6 leaves few checks; construction and decoding must hold up.
  const phy::LdpcCode code(648, 540, 7);
  Rng rng(9);
  const Bits info = rng.random_bits(540);
  const Bits cw = code.encode(info);
  RVec llrs(648);
  for (std::size_t i = 0; i < 648; ++i) llrs[i] = cw[i] ? -6.0 : 6.0;
  const auto res = code.decode(llrs);
  EXPECT_TRUE(res.parity_ok);
  EXPECT_EQ(res.info, info);
}

TEST(DcfEdge, ZeroRetryLimitDropsOnFirstFailure) {
  Rng rng(10);
  mac::DcfConfig cfg;
  cfg.retry_limit = 0;
  cfg.packet_error_rate = 0.5;
  cfg.duration_s = 1.0;
  const auto r = mac::simulate_dcf(cfg, rng);
  EXPECT_GT(r.dropped, 0u);
  EXPECT_GT(r.delivered_frames, 0u);
}

TEST(DcfEdge, TotalLossDeliversNothing) {
  Rng rng(11);
  mac::DcfConfig cfg;
  cfg.packet_error_rate = 1.0;
  cfg.duration_s = 0.5;
  const auto r = mac::simulate_dcf(cfg, rng);
  EXPECT_EQ(r.delivered_frames, 0u);
  EXPECT_EQ(r.throughput_mbps, 0.0);
  EXPECT_GT(r.dropped, 0u);
}

TEST(DcfEdge, VeryShortRunIsSane) {
  Rng rng(12);
  mac::DcfConfig cfg;
  cfg.duration_s = 1e-3;  // barely one exchange
  const auto r = mac::simulate_dcf(cfg, rng);
  EXPECT_LE(r.delivered_frames, 3u);
}

TEST(PsmEdge, ZeroTrafficDozesAlmostAlways) {
  Rng rng(13);
  mac::PsmConfig cfg;
  cfg.psm_enabled = true;
  cfg.arrival_rate_pps = 0.0;
  cfg.duration_s = 10.0;
  const auto r = mac::simulate_psm(cfg, rng);
  EXPECT_EQ(r.delivered, 0u);
  EXPECT_GT(r.time_doze_s / cfg.duration_s, 0.95);
}

TEST(LinkEdge, ZeroSnrStillRuns) {
  Rng rng(14);
  const LinkResult r = run_ofdm_link(phy::OfdmMcs::k6Mbps, 50, 5, 0.0, rng);
  EXPECT_EQ(r.packets, 5u);
}

TEST(LinkEdge, ExtremeNegativeSnrIsAllErrors) {
  Rng rng(15);
  const LinkResult r = run_ofdm_link(phy::OfdmMcs::k54Mbps, 100, 5, -20.0, rng);
  EXPECT_EQ(r.packet_errors, 5u);
  EXPECT_GT(r.ber(), 0.2);
}

TEST(WaveformEdge, NormalizeEmptyAndZeroIsSafe) {
  CVec empty;
  dsp::normalize_power(empty);
  CVec zeros(8, Cplx{0.0, 0.0});
  dsp::normalize_power(zeros, 5.0);
  for (const auto& v : zeros) EXPECT_EQ(v, Cplx(0.0, 0.0));
}

}  // namespace
}  // namespace wlan

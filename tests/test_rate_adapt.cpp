// Tests for ARF / SNR-ideal rate adaptation.
#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "mac/rate_adapt.h"

namespace wlan::mac {
namespace {

TEST(RateOptions, LadderIsOrdered) {
  const auto rates = ofdm_rate_options();
  ASSERT_EQ(rates.size(), 8u);
  for (std::size_t i = 0; i + 1 < rates.size(); ++i) {
    EXPECT_LE(rates[i].rate_mbps, rates[i + 1].rate_mbps);
    EXPECT_LE(rates[i].per_midpoint_db, rates[i + 1].per_midpoint_db);
  }
}

TEST(RateOptions, PerModelShape) {
  const RateOption option{54.0, 18.6, 1.6};
  EXPECT_NEAR(rate_option_per(option, 18.6), 0.5, 1e-12);
  EXPECT_GT(rate_option_per(option, 10.0), 0.99);
  EXPECT_LT(rate_option_per(option, 28.0), 0.01);
  // Monotone decreasing in SNR.
  double prev = 1.0;
  for (double snr = 0.0; snr <= 30.0; snr += 1.0) {
    const double per = rate_option_per(option, snr);
    EXPECT_LE(per, prev);
    prev = per;
  }
}

TEST(Arf, ClimbsOnSuccessStreaks) {
  ArfController arf(8, 10);
  EXPECT_EQ(arf.current(), 0u);
  for (int i = 0; i < 10; ++i) arf.on_success();
  EXPECT_EQ(arf.current(), 1u);
  for (int i = 0; i < 10; ++i) arf.on_success();
  EXPECT_EQ(arf.current(), 2u);
}

TEST(Arf, ProbeFailureFallsStraightBack) {
  ArfController arf(8, 10);
  for (int i = 0; i < 10; ++i) arf.on_success();
  ASSERT_EQ(arf.current(), 1u);
  arf.on_failure();  // first packet at the new rate fails -> back down
  EXPECT_EQ(arf.current(), 0u);
}

TEST(Arf, TwoConsecutiveFailuresStepDown) {
  ArfController arf(8, 10);
  for (int i = 0; i < 20; ++i) arf.on_success();
  ASSERT_EQ(arf.current(), 2u);
  arf.on_success();
  arf.on_failure();
  EXPECT_EQ(arf.current(), 2u);  // one failure alone is tolerated
  arf.on_failure();
  EXPECT_EQ(arf.current(), 1u);
}

TEST(Arf, ClampsAtLadderEnds) {
  ArfController arf(3, 2);
  arf.on_failure();
  arf.on_failure();
  EXPECT_EQ(arf.current(), 0u);
  for (int i = 0; i < 100; ++i) arf.on_success();
  EXPECT_EQ(arf.current(), 2u);
  for (int i = 0; i < 10; ++i) arf.on_success();
  EXPECT_EQ(arf.current(), 2u);
}

TEST(Simulate, ArfBeatsFixedMaxInFading) {
  // At a mean SNR where 54 Mbps often fails, ARF should deliver far more
  // packets than pinning the top rate.
  Rng rng(1);
  RateAdaptConfig cfg;
  cfg.mean_snr_db = 15.0;
  cfg.n_packets = 8000;
  cfg.control = RateControl::kFixedMax;
  const auto fixed = simulate_rate_adaptation(cfg, rng);
  cfg.control = RateControl::kArf;
  const auto arf = simulate_rate_adaptation(cfg, rng);
  EXPECT_LT(arf.per, fixed.per * 0.7);
  EXPECT_GT(arf.delivered, fixed.delivered);
}

TEST(Simulate, SnrIdealUpperBoundsArf) {
  // Paired seeds: both controllers face the same channel realization.
  RateAdaptConfig cfg;
  cfg.mean_snr_db = 15.0;
  cfg.n_packets = 8000;
  cfg.control = RateControl::kArf;
  Rng r1(2);
  const auto arf = simulate_rate_adaptation(cfg, r1);
  cfg.control = RateControl::kSnrIdeal;
  Rng r2(2);
  const auto ideal = simulate_rate_adaptation(cfg, r2);
  EXPECT_GE(ideal.goodput_mbps, arf.goodput_mbps * 0.95);
  EXPECT_LT(ideal.per, 0.35);
}

TEST(Simulate, HighSnrConvergesToTopRate) {
  Rng rng(3);
  RateAdaptConfig cfg;
  cfg.mean_snr_db = 35.0;
  cfg.n_packets = 4000;
  cfg.control = RateControl::kArf;
  const auto r = simulate_rate_adaptation(cfg, rng);
  EXPECT_GT(r.mean_rate_mbps, 45.0);
  EXPECT_LT(r.per, 0.05);
}

TEST(Simulate, LowSnrFallsToRobustRates) {
  Rng rng(4);
  RateAdaptConfig cfg;
  cfg.mean_snr_db = 5.0;
  cfg.n_packets = 4000;
  cfg.control = RateControl::kArf;
  const auto r = simulate_rate_adaptation(cfg, rng);
  EXPECT_LT(r.mean_rate_mbps, 20.0);
}

TEST(Simulate, ArfTracksSlowFadingBetterThanFast) {
  // ARF reacts on packet timescales: in slow fading it stays close to the
  // genie controller, in fast fading its feedback is stale and the gap to
  // the genie widens.
  auto gap_at = [](double doppler_hz, std::uint64_t seed) {
    RateAdaptConfig cfg;
    cfg.mean_snr_db = 15.0;
    cfg.doppler_hz = doppler_hz;
    cfg.n_packets = 20000;
    cfg.control = RateControl::kArf;
    Rng r1(seed);
    const auto arf = simulate_rate_adaptation(cfg, r1);
    cfg.control = RateControl::kSnrIdeal;
    Rng r2(seed);
    const auto ideal = simulate_rate_adaptation(cfg, r2);
    return ideal.goodput_mbps - arf.goodput_mbps;
  };
  EXPECT_GT(gap_at(50.0, 5), gap_at(1.0, 5));
}

TEST(Simulate, Validation) {
  Rng rng(6);
  RateAdaptConfig cfg;
  cfg.n_packets = 0;
  EXPECT_THROW(simulate_rate_adaptation(cfg, rng), ContractError);
}

}  // namespace
}  // namespace wlan::mac

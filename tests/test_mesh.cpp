// Tests for mesh topologies, routing metrics, and coverage.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/check.h"
#include "common/rng.h"
#include "mesh/mesh.h"

namespace wlan::mesh {
namespace {

channel::PathLossModel indoor_model() {
  channel::PathLossModel m;
  m.carrier_hz = 5.2e9;
  m.breakpoint_m = 5.0;
  m.exponent_after = 3.5;
  return m;
}

TEST(Mesh, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

TEST(Mesh, SnrToRateLadder) {
  EXPECT_DOUBLE_EQ(snr_to_rate_mbps(30.0), 54.0);
  EXPECT_DOUBLE_EQ(snr_to_rate_mbps(24.0), 54.0);
  EXPECT_DOUBLE_EQ(snr_to_rate_mbps(15.0), 24.0);
  EXPECT_DOUBLE_EQ(snr_to_rate_mbps(3.5), 6.0);
  EXPECT_DOUBLE_EQ(snr_to_rate_mbps(1.0), 0.0);
  EXPECT_DOUBLE_EQ(snr_to_rate_mbps(-10.0), 0.0);
}

TEST(Mesh, LinkSnrDecreasesWithDistance) {
  const MeshNetwork net({{0, 0}, {10, 0}, {50, 0}}, indoor_model());
  EXPECT_GT(net.link_snr_db(0, 1), net.link_snr_db(0, 2));
}

TEST(Mesh, DirectRouteWhenClose) {
  const MeshNetwork net({{0, 0}, {5, 0}}, indoor_model());
  const auto route = net.direct_route(0, 1);
  ASSERT_TRUE(route.reachable());
  EXPECT_EQ(route.hops(), 1u);
  EXPECT_DOUBLE_EQ(route.end_to_end_mbps, 54.0);
}

TEST(Mesh, DirectRouteEmptyWhenOutOfRange) {
  const MeshNetwork net({{0, 0}, {2000, 0}}, indoor_model());
  EXPECT_FALSE(net.direct_route(0, 1).reachable());
}

TEST(Mesh, AirtimeMetricPrefersFastHops) {
  // The paper's core mesh claim: 0 --- 1 --- 2 in a line, where the direct
  // 0->2 link only sustains the lowest rate but each half sustains a high
  // rate. The airtime route must relay via 1 and beat the direct rate.
  // Geometry chosen so d(0,2) only supports a low rate.
  const MeshNetwork net({{0, 0}, {50, 0}, {100, 0}}, indoor_model());
  const double direct_rate = net.link_rate_mbps(0, 2);
  ASSERT_GT(direct_rate, 0.0);
  ASSERT_LE(direct_rate, 9.0);
  const auto airtime = net.shortest_route(0, 2, MeshNetwork::Metric::kAirtime);
  ASSERT_TRUE(airtime.reachable());
  EXPECT_EQ(airtime.hops(), 2u);
  EXPECT_GT(airtime.end_to_end_mbps, direct_rate);
}

TEST(Mesh, HopCountMetricTakesDirectLink) {
  const MeshNetwork net({{0, 0}, {50, 0}, {100, 0}}, indoor_model());
  const auto hops = net.shortest_route(0, 2, MeshNetwork::Metric::kHopCount);
  ASSERT_TRUE(hops.reachable());
  EXPECT_EQ(hops.hops(), 1u);  // min-hop ignores the rate penalty
}

TEST(Mesh, MultiHopReachesBeyondDirectRange) {
  // Chain of relays: direct 0->4 is unreachable, mesh works.
  const MeshNetwork net({{0, 0}, {60, 0}, {120, 0}, {180, 0}, {240, 0}},
                        indoor_model());
  EXPECT_FALSE(net.direct_route(0, 4).reachable());
  const auto route = net.shortest_route(0, 4, MeshNetwork::Metric::kAirtime);
  ASSERT_TRUE(route.reachable());
  EXPECT_GE(route.hops(), 2u);
  EXPECT_GT(route.end_to_end_mbps, 0.0);
}

TEST(Mesh, RouteEndpointsValidated) {
  const MeshNetwork net({{0, 0}, {10, 0}}, indoor_model());
  EXPECT_THROW(net.shortest_route(0, 0, MeshNetwork::Metric::kAirtime),
               wlan::ContractError);
  EXPECT_THROW(net.shortest_route(0, 5, MeshNetwork::Metric::kAirtime),
               wlan::ContractError);
}

TEST(Mesh, CoverageMeshAtLeastDirect) {
  Rng rng(1);
  for (int trial = 0; trial < 5; ++trial) {
    const MeshNetwork net =
        MeshNetwork::random(rng, 30, 400.0, indoor_model());
    const auto cov = net.coverage(0);
    EXPECT_GE(cov.mesh_fraction, cov.direct_fraction);
    EXPECT_GE(cov.direct_fraction, 0.0);
    EXPECT_LE(cov.mesh_fraction, 1.0);
  }
}

TEST(Mesh, DenseMeshExtendsCoverageDramatically) {
  // A large area with many nodes: direct coverage from the center is
  // partial; mesh coverage should approach 1.
  Rng rng(2);
  const MeshNetwork net = MeshNetwork::random(rng, 60, 600.0, indoor_model());
  const auto cov = net.coverage(0);
  EXPECT_LT(cov.direct_fraction, 0.9);
  EXPECT_GT(cov.mesh_fraction, cov.direct_fraction * 1.2);
}

class MeshRouteProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MeshRouteProperties, RoutesAreValidPaths) {
  Rng rng(GetParam());
  const MeshNetwork net = MeshNetwork::random(rng, 25, 300.0, indoor_model());
  for (std::size_t dst = 1; dst < 6; ++dst) {
    for (const auto metric :
         {MeshNetwork::Metric::kHopCount, MeshNetwork::Metric::kAirtime}) {
      const auto route = net.shortest_route(0, dst, metric);
      if (!route.reachable()) continue;
      EXPECT_EQ(route.path.front(), 0u);
      EXPECT_EQ(route.path.back(), dst);
      // Every hop must be a usable link, and no node repeats.
      std::set<std::size_t> seen;
      for (std::size_t h = 0; h < route.path.size(); ++h) {
        EXPECT_TRUE(seen.insert(route.path[h]).second);
        if (h + 1 < route.path.size()) {
          EXPECT_GT(net.link_rate_mbps(route.path[h], route.path[h + 1]), 0.0);
        }
      }
      // End-to-end throughput can never exceed the slowest hop.
      double min_rate = 1e9;
      for (std::size_t h = 0; h + 1 < route.path.size(); ++h) {
        min_rate = std::min(min_rate,
                            net.link_rate_mbps(route.path[h], route.path[h + 1]));
      }
      EXPECT_LE(route.end_to_end_mbps, min_rate + 1e-9);
    }
  }
}

TEST_P(MeshRouteProperties, AirtimeNeverWorseThanHopCount) {
  Rng rng(GetParam() + 1000);
  const MeshNetwork net = MeshNetwork::random(rng, 25, 300.0, indoor_model());
  for (std::size_t dst = 1; dst < 8; ++dst) {
    const auto air = net.shortest_route(0, dst, MeshNetwork::Metric::kAirtime);
    const auto hop = net.shortest_route(0, dst, MeshNetwork::Metric::kHopCount);
    if (!air.reachable() || !hop.reachable()) {
      EXPECT_EQ(air.reachable(), hop.reachable());
      continue;
    }
    EXPECT_GE(air.end_to_end_mbps, hop.end_to_end_mbps - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MeshRouteProperties,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(Mesh, RequiresTwoNodes) {
  EXPECT_THROW(MeshNetwork({{0, 0}}, indoor_model()), wlan::ContractError);
}

}  // namespace
}  // namespace wlan::mesh

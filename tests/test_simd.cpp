// Bitwise scalar-vs-SIMD equality for the vectorized kernels.
//
// The SIMD layer's contract (dsp/simd.h) is that every vector lane
// performs exactly the scalar per-element IEEE-754 operations, so
// toggling `set_vector_enabled` must not change a single output bit.
// These tests run each kernel both ways on the same input and compare
// results through std::bit_cast — exact equality including signed
// zeros, not an epsilon. In a -DHOLTWLAN_SIMD=OFF build the toggle is
// forced off and both runs take the scalar path; the tests then pass
// trivially, keeping one test list for both build flavours.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "dsp/simd.h"
#include "phy/convolutional.h"
#include "phy/ldpc.h"
#include "phy/modulation.h"
#include "phy/workspace.h"

namespace wlan {
namespace {

// Forces the vector path on or off for the duration of a scope.
class ScopedVector {
 public:
  explicit ScopedVector(bool enabled)
      : saved_(dsp::simd::vector_enabled()) {
    dsp::simd::set_vector_enabled(enabled);
  }
  ~ScopedVector() { dsp::simd::set_vector_enabled(saved_); }

 private:
  bool saved_;
};

void expect_bitwise_equal(const RVec& a, const RVec& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << what << " differs at index " << i << ": " << a[i] << " vs "
        << b[i];
  }
}

constexpr phy::Modulation kAllModulations[] = {
    phy::Modulation::kBpsk, phy::Modulation::kQpsk, phy::Modulation::kQam16,
    phy::Modulation::kQam64};

TEST(SimdEquality, DemapperAllModulations) {
  Rng rng(42);
  for (const phy::Modulation mod : kAllModulations) {
    // 199 symbols: not a multiple of any lane width, so the tail path
    // runs too.
    constexpr std::size_t kSymbols = 199;
    const std::size_t bps = phy::bits_per_symbol(mod);
    Bits bits(kSymbols * bps);
    rng.fill_bits(bits);
    CVec symbols = phy::modulate(bits, mod);
    RVec noise_var(kSymbols);
    for (std::size_t i = 0; i < kSymbols; ++i) {
      symbols[i] += Cplx{0.3 * rng.gaussian(), 0.3 * rng.gaussian()};
      noise_var[i] = 0.05 + 0.02 * static_cast<double>(i % 9);
    }
    RVec scalar(kSymbols * bps);
    RVec vectorized(kSymbols * bps);
    {
      ScopedVector off(false);
      phy::demodulate_llr_to(symbols, mod, noise_var, scalar);
    }
    {
      ScopedVector on(true);
      phy::demodulate_llr_to(symbols, mod, noise_var, vectorized);
    }
    expect_bitwise_equal(scalar, vectorized, "per-symbol-nv LLRs");

    // Shared-noise-variance overload.
    {
      ScopedVector off(false);
      phy::demodulate_llr_to(symbols, mod, 0.1, scalar);
    }
    {
      ScopedVector on(true);
      phy::demodulate_llr_to(symbols, mod, 0.1, vectorized);
    }
    expect_bitwise_equal(scalar, vectorized, "shared-nv LLRs");
  }
}

TEST(SimdEquality, ViterbiAllCodeRates) {
  Rng rng(7);
  phy::Workspace ws;
  for (const phy::CodeRate rate :
       {phy::CodeRate::kR12, phy::CodeRate::kR23, phy::CodeRate::kR34,
        phy::CodeRate::kR56}) {
    constexpr std::size_t kInfoBits = 501;
    Bits info(kInfoBits);
    rng.fill_bits(info);
    for (std::size_t i = kInfoBits - 6; i < kInfoBits; ++i) info[i] = 0;
    Bits coded;
    phy::convolutional_encode_into(info, coded);
    Bits punctured;
    phy::puncture_into(coded, rate, punctured);
    RVec noisy(punctured.size());
    for (std::size_t i = 0; i < punctured.size(); ++i) {
      const double tx = punctured[i] ? -1.0 : 1.0;
      noisy[i] = 4.0 * (tx + 0.6 * rng.gaussian());
    }
    RVec llrs;
    phy::depuncture_into(noisy, rate, kInfoBits, llrs);
    Bits scalar_out;
    Bits vector_out;
    {
      ScopedVector off(false);
      phy::viterbi_decode_into(llrs, true, scalar_out, ws);
    }
    {
      ScopedVector on(true);
      phy::viterbi_decode_into(llrs, true, vector_out, ws);
    }
    EXPECT_EQ(scalar_out, vector_out)
        << "Viterbi decode differs at code rate "
        << phy::code_rate_value(rate);
  }
}

TEST(SimdEquality, LdpcMinSumDecode) {
  Rng rng(11);
  phy::Workspace ws;
  for (const auto& [n, k] :
       {std::pair<std::size_t, std::size_t>{648, 324},
        std::pair<std::size_t, std::size_t>{648, 432},
        std::pair<std::size_t, std::size_t>{1296, 648}}) {
    const phy::LdpcCode code(n, k, 11);
    Bits info(k);
    rng.fill_bits(info);
    Bits codeword;
    code.encode_into(info, codeword);
    // Noisy enough that the decoder iterates (exercising the check-node
    // update) rather than exiting on the channel decisions.
    RVec llrs(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double tx = codeword[i] ? -1.0 : 1.0;
      llrs[i] = 2.0 * (tx + 0.7 * rng.gaussian()) / 0.49;
    }
    phy::LdpcCode::DecodeResult scalar_res;
    phy::LdpcCode::DecodeResult vector_res;
    {
      ScopedVector off(false);
      code.decode_into(llrs, 40, 0.8, scalar_res, ws);
    }
    {
      ScopedVector on(true);
      code.decode_into(llrs, 40, 0.8, vector_res, ws);
    }
    EXPECT_EQ(scalar_res.info, vector_res.info)
        << "LDPC (" << n << "," << k << ") decoded bits differ";
    EXPECT_EQ(scalar_res.parity_ok, vector_res.parity_ok);
    EXPECT_EQ(scalar_res.iterations, vector_res.iterations)
        << "LDPC (" << n << "," << k
        << ") took different iteration counts — posteriors diverged";
  }
}

}  // namespace
}  // namespace wlan

// Tests for the Bianchi analytic DCF model and its agreement with the
// slotted simulator.
#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "mac/bianchi.h"
#include "mac/dcf.h"

namespace wlan::mac {
namespace {

TEST(Bianchi, SingleStationNeverCollides) {
  BianchiInput input;
  input.n_stations = 1;
  const auto r = bianchi_saturation(input);
  EXPECT_NEAR(r.collision_probability, 0.0, 1e-9);
  EXPECT_GT(r.tau, 0.05);
  EXPECT_GT(r.throughput_mbps, 20.0);
}

TEST(Bianchi, CollisionProbabilityGrowsWithStations) {
  double prev = 0.0;
  for (const std::size_t n : {2u, 5u, 10u, 20u, 50u}) {
    BianchiInput input;
    input.n_stations = n;
    const auto r = bianchi_saturation(input);
    EXPECT_GT(r.collision_probability, prev);
    prev = r.collision_probability;
  }
  EXPECT_GT(prev, 0.3);
  EXPECT_LT(prev, 0.9);
}

TEST(Bianchi, TauDecreasesWithStations) {
  BianchiInput a;
  a.n_stations = 2;
  BianchiInput b;
  b.n_stations = 40;
  EXPECT_GT(bianchi_saturation(a).tau, bianchi_saturation(b).tau);
}

TEST(Bianchi, ThroughputDegradesSlowlyLikeTheClassicCurve) {
  BianchiInput input;
  const auto few = [&] {
    input.n_stations = 5;
    return bianchi_saturation(input).throughput_mbps;
  }();
  const auto many = [&] {
    input.n_stations = 50;
    return bianchi_saturation(input).throughput_mbps;
  }();
  EXPECT_GT(many, 0.5 * few);  // famous flat-ish saturation curve
  EXPECT_LT(many, few);
}

TEST(Bianchi, RtsCtsWinsAtLargeN) {
  BianchiInput basic;
  basic.n_stations = 50;
  basic.payload_bytes = 2000;
  BianchiInput rts = basic;
  rts.rts_cts = true;
  EXPECT_GT(bianchi_saturation(rts).throughput_mbps,
            bianchi_saturation(basic).throughput_mbps);
}

class BianchiVsSimulator : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BianchiVsSimulator, ThroughputAgreesWithin20Percent) {
  const std::size_t n = GetParam();
  BianchiInput input;
  input.n_stations = n;
  input.data_rate_mbps = 54.0;
  const auto model = bianchi_saturation(input);

  DcfConfig cfg;
  cfg.n_stations = n;
  cfg.data_rate_mbps = 54.0;
  cfg.duration_s = 3.0;
  Rng rng(100 + n);
  const auto sim = simulate_dcf(cfg, rng);

  EXPECT_NEAR(sim.throughput_mbps, model.throughput_mbps,
              0.2 * model.throughput_mbps)
      << "n = " << n;
}

TEST_P(BianchiVsSimulator, CollisionProbabilityAgrees) {
  const std::size_t n = GetParam();
  if (n < 2) GTEST_SKIP();
  BianchiInput input;
  input.n_stations = n;
  const auto model = bianchi_saturation(input);

  DcfConfig cfg;
  cfg.n_stations = n;
  cfg.duration_s = 3.0;
  Rng rng(200 + n);
  const auto sim = simulate_dcf(cfg, rng);
  EXPECT_NEAR(sim.collision_probability, model.collision_probability,
              std::max(0.05, 0.3 * model.collision_probability))
      << "n = " << n;
}

INSTANTIATE_TEST_SUITE_P(StationCounts, BianchiVsSimulator,
                         ::testing::Values(1, 2, 5, 10, 25));

TEST(Bianchi, Validation) {
  BianchiInput input;
  input.n_stations = 0;
  EXPECT_THROW(bianchi_saturation(input), ContractError);
}

}  // namespace
}  // namespace wlan::mac

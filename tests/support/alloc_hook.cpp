#include "support/alloc_hook.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::size_t> g_news{0};
// Plain POD thread-local: zero-initialized, no guard, safe to bump from
// inside operator new (a guarded TLS init could itself allocate).
thread_local std::size_t t_news = 0;

void* counted_alloc(std::size_t size, std::size_t align) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  ++t_news;
  if (size == 0) size = 1;
  void* p;
  if (align > alignof(std::max_align_t)) {
    // aligned_alloc requires the size to be a multiple of the alignment.
    p = std::aligned_alloc(align, (size + align - 1) / align * align);
  } else {
    p = std::malloc(size);
  }
  return p;
}

void* counted_alloc_or_throw(std::size_t size, std::size_t align) {
  void* p = counted_alloc(size, align);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

namespace testsupport {

std::size_t allocation_count() noexcept {
  return g_news.load(std::memory_order_relaxed);
}

std::size_t thread_allocation_count() noexcept { return t_news; }

}  // namespace testsupport

void* operator new(std::size_t size) { return counted_alloc_or_throw(size, 0); }
void* operator new[](std::size_t size) {
  return counted_alloc_or_throw(size, 0);
}
void* operator new(std::size_t size, std::align_val_t al) {
  return counted_alloc_or_throw(size, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return counted_alloc_or_throw(size, static_cast<std::size_t>(al));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size, 0);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size, 0);
}
void* operator new(std::size_t size, std::align_val_t al,
                   const std::nothrow_t&) noexcept {
  return counted_alloc(size, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t size, std::align_val_t al,
                     const std::nothrow_t&) noexcept {
  return counted_alloc(size, static_cast<std::size_t>(al));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

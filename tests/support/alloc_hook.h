// Global operator-new counter for allocation tests (tests only).
//
// Linking `support/alloc_hook.cpp` into a test binary replaces the global
// allocation functions with counting wrappers over malloc/free. Tests
// snapshot `allocation_count()` around a region and assert on the delta;
// the counter is process-wide and monotonic.
#pragma once

#include <cstddef>

namespace testsupport {

/// Number of global operator-new (all variants) calls since process start.
std::size_t allocation_count() noexcept;

/// Operator-new calls made by the CALLING thread since it started —
/// suitable as an obs::perf alloc source (set_alloc_source) for
/// per-span allocation attribution that other threads cannot skew.
std::size_t thread_allocation_count() noexcept;

}  // namespace testsupport

// Tests for the PA and radio power models and the low-power policies.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "mac/psm.h"
#include "power/power.h"

namespace wlan::power {
namespace {

TEST(Pa, PeakEfficiencyAtZeroBackoff) {
  PaModel pa;
  pa.peak_efficiency = 0.4;
  EXPECT_DOUBLE_EQ(pa.efficiency_at_backoff_db(0.0), 0.4);
}

TEST(Pa, ClassAHalvesEvery3Db) {
  PaModel pa;
  pa.pa_class = PaClass::kClassA;
  pa.peak_efficiency = 0.5;
  EXPECT_NEAR(pa.efficiency_at_backoff_db(3.0), 0.25, 0.003);
  EXPECT_NEAR(pa.efficiency_at_backoff_db(10.0), 0.05, 1e-9);
}

TEST(Pa, ClassAbHalvesEvery6Db) {
  PaModel pa;
  pa.pa_class = PaClass::kClassAB;
  pa.peak_efficiency = 0.5;
  EXPECT_NEAR(pa.efficiency_at_backoff_db(6.0), 0.25, 0.003);
  EXPECT_NEAR(pa.efficiency_at_backoff_db(20.0), 0.05, 1e-9);
}

TEST(Pa, DcPowerKnownValue) {
  PaModel pa;
  pa.pa_class = PaClass::kClassAB;
  pa.peak_efficiency = 0.4;
  // 17 dBm = 50 mW at 8 dB backoff: eff = 0.4 * 10^-0.4 ~ 0.1592.
  const double p = pa.dc_power_w(17.0, 8.0);
  EXPECT_NEAR(p, 0.050 / 0.1592, 0.01);
}

TEST(Pa, RejectsOutputBeyondSaturation) {
  PaModel pa;
  pa.max_output_dbm = 25.0;
  EXPECT_THROW(pa.dc_power_w(20.0, 8.0), wlan::ContractError);
  EXPECT_NO_THROW(pa.dc_power_w(17.0, 8.0));
}

TEST(Pa, NegativeBackoffRejected) {
  PaModel pa;
  EXPECT_THROW(pa.efficiency_at_backoff_db(-1.0), wlan::ContractError);
}

TEST(Radio, TxPowerScalesWithChains) {
  RadioPowerModel model;
  const double p1 = model.tx_power_w(1, 14.0, 8.0);
  const double p2 = model.tx_power_w(2, 14.0, 8.0);
  const double p4 = model.tx_power_w(4, 14.0, 8.0);
  EXPECT_GT(p2, 1.6 * p1 - model.baseband_fixed_w);
  EXPECT_GT(p4, p2);
  // Per-chain contributions are linear: p4 - p2 = 2 * (p2 - p1) exactly.
  EXPECT_NEAR(p4 - p2, 2.0 * (p2 - p1), 1e-12);
}

TEST(Radio, RxPowerScalesWithChains) {
  RadioPowerModel model;
  const double r1 = model.rx_power_w(1, 1);
  const double r4 = model.rx_power_w(4, 4);
  EXPECT_GT(r4, 2.0 * r1);
}

TEST(Radio, PaprBackoffCostVisible) {
  // The C11 mechanism: the same radiated power costs much more PA DC input
  // when the waveform needs 10 dB of headroom (OFDM) than 3 dB
  // (DSSS-like). At the PA the class-AB penalty is 10^(7/20) ~ 2.2x.
  RadioPowerModel model;
  const double ofdm_pa = model.pa.dc_power_w(14.0, 10.0);
  const double dsss_pa = model.pa.dc_power_w(14.0, 3.0);
  EXPECT_GT(ofdm_pa, 2.0 * dsss_pa);
  // At the device level the fixed overheads dilute but do not erase it.
  EXPECT_GT(model.tx_power_w(1, 14.0, 10.0), model.tx_power_w(1, 14.0, 3.0));
}

TEST(Policy, ChainSwitchingInterpolates) {
  RadioPowerModel model;
  const double always_on = chain_switching_rx_power_w(model, 4, 4, 1.0);
  const double never_on = chain_switching_rx_power_w(model, 4, 4, 0.0);
  const double duty10 = chain_switching_rx_power_w(model, 4, 4, 0.1);
  EXPECT_DOUBLE_EQ(never_on, model.idle_listen_w);
  EXPECT_DOUBLE_EQ(always_on, model.rx_power_w(4, 4));
  EXPECT_GT(duty10, never_on);
  EXPECT_LT(duty10, 0.25 * always_on + never_on);
}

TEST(Policy, ChainSwitchingSavesAtLightLoad) {
  // At 5% RX duty cycle a 4x4 radio under chain switching should burn
  // less than half the always-on listening power.
  RadioPowerModel model;
  const double switched = chain_switching_rx_power_w(model, 4, 4, 0.05);
  const double always = model.rx_power_w(4, 4);
  EXPECT_LT(switched, 0.5 * always);
}

TEST(Policy, BeamformingPowerReduction) {
  EXPECT_NEAR(beamforming_tx_power_dbm(17.0, 2), 17.0 - 3.01, 0.02);
  EXPECT_NEAR(beamforming_tx_power_dbm(17.0, 4), 17.0 - 6.02, 0.02);
  EXPECT_DOUBLE_EQ(beamforming_tx_power_dbm(17.0, 1), 17.0);
}

TEST(Policy, EnergyPerBitFallsWithRate) {
  RadioPowerModel model;
  const double slow = tx_energy_per_bit_j(model, 1, 14.0, 8.0, 6.0);
  const double fast = tx_energy_per_bit_j(model, 1, 14.0, 8.0, 54.0);
  EXPECT_NEAR(slow / fast, 9.0, 1e-9);
}

TEST(Policy, MimoEnergyPerBitCanWinViaRate) {
  // 4 chains cost more power, but if they carry 4x the rate the energy
  // per bit is comparable or better at high utilization.
  RadioPowerModel model;
  const double siso = tx_energy_per_bit_j(model, 1, 14.0, 10.0, 65.0);
  const double mimo = tx_energy_per_bit_j(model, 4, 14.0, 10.0, 260.0);
  EXPECT_LT(mimo, 1.3 * siso);
}

TEST(Psm, PsmEnergyFarBelowCam) {
  Rng rng(1);
  mac::PsmConfig cam;
  cam.psm_enabled = false;
  cam.arrival_rate_pps = 5.0;
  cam.duration_s = 20.0;
  mac::PsmConfig psm = cam;
  psm.psm_enabled = true;
  const mac::PsmResult r_cam = mac::simulate_psm(cam, rng);
  const mac::PsmResult r_psm = mac::simulate_psm(psm, rng);
  RadioPowerModel model;
  const double e_cam = psm_energy_j(model, r_cam);
  const double e_psm = psm_energy_j(model, r_psm);
  EXPECT_LT(e_psm, 0.3 * e_cam);
  EXPECT_GT(e_psm, 0.0);
}

TEST(Psm, EnergyBreakdownAdditive) {
  RadioPowerModel model;
  mac::PsmResult breakdown;
  breakdown.time_rx_s = 1.0;
  breakdown.time_tx_s = 1.0;
  breakdown.time_idle_s = 1.0;
  breakdown.time_doze_s = 1.0;
  const double total = psm_energy_j(model, breakdown, 15.0, 9.0);
  const double expected = model.tx_power_w(1, 15.0, 9.0) +
                          model.rx_power_w(1, 1) + model.idle_listen_w +
                          model.doze_w;
  EXPECT_NEAR(total, expected, 1e-12);
}

TEST(Radio, ValidationOfDegenerateArgs) {
  RadioPowerModel model;
  EXPECT_THROW(model.tx_power_w(0, 14.0, 8.0), wlan::ContractError);
  EXPECT_THROW(model.rx_power_w(0, 1), wlan::ContractError);
  EXPECT_THROW(chain_switching_rx_power_w(model, 2, 2, 1.5), wlan::ContractError);
  EXPECT_THROW(tx_energy_per_bit_j(model, 1, 14.0, 8.0, 0.0), wlan::ContractError);
  EXPECT_THROW(beamforming_tx_power_dbm(17.0, 0), wlan::ContractError);
}

}  // namespace
}  // namespace wlan::power

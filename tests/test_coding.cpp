// Tests for the scrambler and the convolutional code / Viterbi decoder.
#include <gtest/gtest.h>

#include <algorithm>

#include "channel/awgn.h"
#include "common/bits.h"
#include "common/check.h"
#include "common/rng.h"
#include "phy/convolutional.h"
#include "phy/scrambler.h"

namespace wlan::phy {
namespace {

TEST(Scrambler, IsAnInvolution) {
  Rng rng(1);
  const Bits data = rng.random_bits(1000);
  const Bits once = scramble(data, 0x5D);
  const Bits twice = scramble(once, 0x5D);
  EXPECT_EQ(twice, data);
}

TEST(Scrambler, ChangesTheData) {
  const Bits zeros(200, 0);
  const Bits scrambled = scramble(zeros, 0x7F);
  EXPECT_GT(hamming_distance(zeros, scrambled), 50u);
}

TEST(Scrambler, SequenceHasPeriod127) {
  const Bits zeros(254, 0);
  const Bits seq = scramble(zeros, 0x7F);
  for (std::size_t i = 0; i < 127; ++i) {
    EXPECT_EQ(seq[i], seq[i + 127]) << "position " << i;
  }
  // And it is not shorter-period (check a few).
  bool all_equal_64 = true;
  for (std::size_t i = 0; i < 63; ++i) {
    if (seq[i] != seq[i + 63]) all_equal_64 = false;
  }
  EXPECT_FALSE(all_equal_64);
}

TEST(Scrambler, MSequenceIsBalanced) {
  const Bits zeros(127, 0);
  const Bits seq = scramble(zeros, 0x7F);
  std::size_t ones = 0;
  for (const auto b : seq) ones += b;
  EXPECT_EQ(ones, 64u);  // m-sequence of period 127 has 64 ones
}

TEST(Scrambler, RejectsZeroSeed) {
  const Bits data(8, 0);
  EXPECT_THROW(scramble(data, 0x00), ContractError);
}

TEST(Scrambler, DifferentSeedsGiveDifferentSequences) {
  const Bits zeros(127, 0);
  EXPECT_NE(scramble(zeros, 0x7F), scramble(zeros, 0x5D));
}

TEST(Convolutional, AllZeroInputGivesAllZeroOutput) {
  const Bits zeros(100, 0);
  const Bits coded = convolutional_encode(zeros);
  ASSERT_EQ(coded.size(), 200u);
  for (const auto b : coded) EXPECT_EQ(b, 0);
}

TEST(Convolutional, ImpulseResponseMatchesGenerators) {
  // A single 1 followed by zeros reads out the generator taps
  // 133o = 1011011, 171o = 1111001 (MSB = current input).
  Bits impulse(7, 0);
  impulse[0] = 1;
  const Bits coded = convolutional_encode(impulse);
  const Bits expect_a = {1, 0, 1, 1, 0, 1, 1};  // 1011011 read MSB->LSB
  const Bits expect_b = {1, 1, 1, 1, 0, 0, 1};  // 1111001 read MSB->LSB
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(coded[2 * i], expect_a[i]) << "A bit " << i;
    EXPECT_EQ(coded[2 * i + 1], expect_b[i]) << "B bit " << i;
  }
}

TEST(Convolutional, CodeRateValues) {
  EXPECT_DOUBLE_EQ(code_rate_value(CodeRate::kR12), 0.5);
  EXPECT_NEAR(code_rate_value(CodeRate::kR23), 2.0 / 3.0, 1e-15);
  EXPECT_DOUBLE_EQ(code_rate_value(CodeRate::kR34), 0.75);
  EXPECT_NEAR(code_rate_value(CodeRate::kR56), 5.0 / 6.0, 1e-15);
}

TEST(Convolutional, CodedLengthMatchesRate) {
  // 120 info bits -> 240 mother bits -> scaled by rate.
  EXPECT_EQ(coded_length(120, CodeRate::kR12), 240u);
  EXPECT_EQ(coded_length(120, CodeRate::kR23), 180u);
  EXPECT_EQ(coded_length(120, CodeRate::kR34), 160u);
  EXPECT_EQ(coded_length(120, CodeRate::kR56), 144u);
}

TEST(Convolutional, PunctureDepunctureShapes) {
  Rng rng(2);
  const std::size_t n_info = 240;
  const Bits info = rng.random_bits(n_info);
  const Bits mother = convolutional_encode(info);
  for (const CodeRate rate :
       {CodeRate::kR12, CodeRate::kR23, CodeRate::kR34, CodeRate::kR56}) {
    const Bits punct = puncture(mother, rate);
    EXPECT_EQ(punct.size(), coded_length(n_info, rate));
    RVec llrs(punct.size());
    for (std::size_t i = 0; i < punct.size(); ++i) {
      llrs[i] = punct[i] ? -1.0 : 1.0;
    }
    const RVec restored = depuncture(llrs, rate, n_info);
    EXPECT_EQ(restored.size(), 2 * n_info);
    // Every non-erased position must carry the right hard value.
    std::size_t erased = 0;
    for (std::size_t i = 0; i < restored.size(); ++i) {
      if (restored[i] == 0.0) {
        ++erased;
      } else {
        EXPECT_EQ(restored[i] < 0.0 ? 1 : 0, mother[i]);
      }
    }
    EXPECT_EQ(erased, 2 * n_info - punct.size());
  }
}

class ViterbiRoundTrip : public ::testing::TestWithParam<CodeRate> {};

TEST_P(ViterbiRoundTrip, NoiselessDecodingIsExact) {
  const CodeRate rate = GetParam();
  Rng rng(3);
  for (const std::size_t len : {24u, 120u, 996u}) {
    Bits info = rng.random_bits(len);
    // Zero tail to terminate the trellis, as 802.11 does.
    for (std::size_t i = len - 6; i < len; ++i) info[i] = 0;
    const Bits punct = puncture(convolutional_encode(info), rate);
    RVec llrs(punct.size());
    for (std::size_t i = 0; i < punct.size(); ++i) {
      llrs[i] = punct[i] ? -1.0 : 1.0;
    }
    const RVec restored = depuncture(llrs, rate, len);
    const Bits decoded = viterbi_decode(restored, true);
    EXPECT_EQ(decoded, info) << "rate index "
                             << static_cast<int>(rate) << " len " << len;
  }
}

INSTANTIATE_TEST_SUITE_P(AllRates, ViterbiRoundTrip,
                         ::testing::Values(CodeRate::kR12, CodeRate::kR23,
                                           CodeRate::kR34, CodeRate::kR56));

TEST(Viterbi, HardDecisionConvenienceMatches) {
  Rng rng(4);
  Bits info = rng.random_bits(64);
  for (std::size_t i = 58; i < 64; ++i) info[i] = 0;
  const Bits coded = convolutional_encode(info);
  EXPECT_EQ(viterbi_decode_hard(coded, true), info);
}

TEST(Viterbi, CorrectsIsolatedBitErrors) {
  Rng rng(5);
  Bits info = rng.random_bits(200);
  for (std::size_t i = 194; i < 200; ++i) info[i] = 0;
  Bits coded = convolutional_encode(info);
  // Flip well-separated coded bits: free distance 10 handles these easily.
  for (const std::size_t pos : {10u, 90u, 170u, 250u, 330u}) coded[pos] ^= 1;
  EXPECT_EQ(viterbi_decode_hard(coded, true), info);
}

TEST(Viterbi, SoftBeatsHardOverAwgn) {
  // Classic ~2 dB soft-decision gain: at a fixed Eb/N0 the soft decoder
  // must produce strictly fewer bit errors over many blocks.
  Rng rng(6);
  std::size_t hard_errors = 0;
  std::size_t soft_errors = 0;
  const double sigma = 0.68;  // moderate noise on unit BPSK symbols
  for (int block = 0; block < 60; ++block) {
    Bits info = rng.random_bits(200);
    for (std::size_t i = 194; i < 200; ++i) info[i] = 0;
    const Bits coded = convolutional_encode(info);
    RVec soft(coded.size());
    RVec hard(coded.size());
    for (std::size_t i = 0; i < coded.size(); ++i) {
      const double tx = coded[i] ? -1.0 : 1.0;
      const double rx = tx + sigma * rng.gaussian();
      soft[i] = 2.0 * rx / (sigma * sigma);
      hard[i] = rx >= 0.0 ? 1.0 : -1.0;
    }
    soft_errors += hamming_distance(viterbi_decode(soft, true), info);
    hard_errors += hamming_distance(viterbi_decode(hard, true), info);
  }
  EXPECT_LT(soft_errors, hard_errors);
}

TEST(Viterbi, UnterminatedDecodingStillWorksAtHighSnr) {
  Rng rng(7);
  const Bits info = rng.random_bits(150);  // no tail
  const Bits coded = convolutional_encode(info);
  const Bits decoded = viterbi_decode_hard(coded, /*terminated=*/false);
  // The last few bits may be unreliable without termination, but the bulk
  // must decode.
  EXPECT_EQ(hamming_distance(std::span(decoded).first(140),
                             std::span(info).first(140)),
            0u);
}

TEST(Viterbi, RejectsOddLlrCount) {
  const RVec llrs(7, 1.0);
  EXPECT_THROW(viterbi_decode(llrs, true), ContractError);
}

}  // namespace
}  // namespace wlan::phy

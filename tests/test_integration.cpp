// Cross-layer integration tests: MAC frames carried over the waveform
// PHYs through channels, with FCS deciding delivery — the full stack a
// real NIC runs, end to end.
#include <gtest/gtest.h>

#include "channel/awgn.h"
#include "channel/fading.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/abstraction.h"
#include "core/link.h"
#include "dsp/ops.h"
#include "mac/frames.h"
#include "mesh/mesh.h"
#include "phy/plcp.h"
#include "phy/sync.h"

namespace wlan {
namespace {

mac::Frame make_data_frame(Rng& rng, std::size_t payload) {
  mac::Frame f;
  f.type = mac::FrameType::kData;
  f.addr1 = mac::MacAddress::from_station_id(1);
  f.addr2 = mac::MacAddress::from_station_id(2);
  f.addr3 = mac::MacAddress::from_station_id(3);
  f.sequence = 42;
  f.payload = rng.random_bytes(payload);
  return f;
}

TEST(Integration, MacFrameOverOfdmPpduCleanChannel) {
  Rng rng(1);
  const mac::Frame frame = make_data_frame(rng, 700);
  const Bytes mpdu = mac::encode_frame(frame);
  CVec wave = phy::ofdm_transmit_ppdu(phy::OfdmMcs::k36Mbps, mpdu);
  const double nv = dsp::mean_power(wave) / db_to_lin(28.0);
  channel::add_awgn(wave, rng, nv);
  const auto psdu = phy::ofdm_receive_ppdu(wave, nv);
  ASSERT_TRUE(psdu.has_value());
  const auto decoded = mac::decode_frame(*psdu);
  ASSERT_TRUE(decoded.has_value()) << "FCS failed after PHY decode";
  EXPECT_EQ(decoded->payload, frame.payload);
  EXPECT_EQ(decoded->sequence, frame.sequence);
  EXPECT_EQ(decoded->addr1, frame.addr1);
}

TEST(Integration, FcsCatchesResidualPhyErrors) {
  // At a marginal SNR some PPDUs decode with bit errors; every such PSDU
  // must be rejected by the FCS — no corrupted frame may pass.
  Rng rng(2);
  int delivered = 0;
  int fcs_rejected = 0;
  int corrupted_accepted = 0;
  for (int p = 0; p < 40; ++p) {
    const mac::Frame frame = make_data_frame(rng, 300);
    const Bytes mpdu = mac::encode_frame(frame);
    const phy::OfdmPhy phy(phy::OfdmMcs::k36Mbps);
    CVec wave = phy.transmit(mpdu);
    const double nv = dsp::mean_power(wave) / db_to_lin(13.2);
    channel::add_awgn(wave, rng, nv);
    const Bytes rx = phy.receive(wave, mpdu.size(), nv);
    const auto decoded = mac::decode_frame(rx);
    if (!decoded) {
      ++fcs_rejected;
    } else if (decoded->payload == frame.payload) {
      ++delivered;
    } else {
      ++corrupted_accepted;
    }
  }
  EXPECT_EQ(corrupted_accepted, 0);
  EXPECT_GT(fcs_rejected, 0);
  EXPECT_GT(delivered, 0);
}

TEST(Integration, MacFrameOver11bPlcpAndCck) {
  Rng rng(3);
  const mac::Frame frame = make_data_frame(rng, 400);
  const Bytes mpdu = mac::encode_frame(frame);
  CVec chips = phy::hr_transmit_ppdu(phy::CckRate::k11Mbps, mpdu);
  channel::add_awgn_snr(chips, rng, 14.0);
  const auto psdu = phy::hr_receive_ppdu(chips);
  ASSERT_TRUE(psdu.has_value());
  const auto decoded = mac::decode_frame(*psdu);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->payload, frame.payload);
}

TEST(Integration, FullAcquisitionChainCarriesAMacFrame) {
  // STF detection + CFO correction + SIGNAL decode + data decode + FCS:
  // the complete receive path from cold RF samples to a validated frame.
  Rng rng(4);
  const mac::Frame frame = make_data_frame(rng, 256);
  const Bytes mpdu = mac::encode_frame(frame);
  CVec wave = phy::prepend_stf(
      phy::ofdm_transmit_ppdu(phy::OfdmMcs::k24Mbps, mpdu));
  const double power = dsp::mean_power(wave);
  phy::apply_cfo(wave, 0.006);
  CVec samples(400, Cplx{0.0, 0.0});
  samples.insert(samples.end(), wave.begin(), wave.end());
  const double nv = power / db_to_lin(25.0);
  channel::add_awgn(samples, rng, nv);

  const auto sync = phy::detect_ppdu(samples);
  ASSERT_TRUE(sync.has_value());
  CVec corrected(samples.begin() + static_cast<std::ptrdiff_t>(sync->ltf_start),
                 samples.end());
  phy::apply_cfo(corrected, -sync->cfo_norm);
  const auto psdu = phy::ofdm_receive_ppdu(corrected, nv);
  ASSERT_TRUE(psdu.has_value());
  const auto decoded = mac::decode_frame(*psdu);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->payload, frame.payload);
}

TEST(Integration, EesmPredictionTracksWaveformPerThroughMultipath) {
  // The link abstraction must rank channel realizations like the real
  // receiver does: correlate predicted and realized failures.
  Rng rng(5);
  const phy::OfdmMcs mcs = phy::OfdmMcs::k36Mbps;
  const double snr = 16.0;
  int agree = 0;
  int total = 0;
  for (int r = 0; r < 30; ++r) {
    Rng draw = rng.fork();
    const channel::Tdl tdl =
        channel::make_tdl(draw, channel::DelayProfile::kLargeOpen, 20e6);
    const double predicted = predict_ofdm_per(mcs, tdl, snr);
    // Majority vote over a few packets through the same realization.
    const phy::OfdmPhy phy(mcs);
    int errors = 0;
    for (int p = 0; p < 5; ++p) {
      const Bytes psdu = draw.random_bytes(500);
      CVec wave = phy.transmit(psdu);
      const double power = dsp::mean_power(wave);
      CVec rx = tdl.apply(wave);
      const double nv = power / db_to_lin(snr);
      channel::add_awgn(rx, draw, nv);
      rx.resize(wave.size());
      if (phy.receive(rx, psdu.size(), nv) != psdu) ++errors;
    }
    const bool sim_bad = errors >= 3;
    const bool pred_bad = predicted >= 0.5;
    if (sim_bad == pred_bad) ++agree;
    ++total;
  }
  EXPECT_GE(agree, total * 3 / 4);
}

TEST(Integration, RateLadderConsistentWithMeshThresholds) {
  // mesh::snr_to_rate_mbps claims each rate works at its threshold SNR:
  // verify against the actual waveform simulation (PER < 35% at threshold
  // + small margin over AWGN).
  Rng rng(6);
  struct Step {
    double snr_db;
    phy::OfdmMcs mcs;
    double rate;
  };
  const Step steps[] = {{24.0, phy::OfdmMcs::k54Mbps, 54.0},
                        {14.0, phy::OfdmMcs::k24Mbps, 24.0},
                        {7.0, phy::OfdmMcs::k12Mbps, 12.0},
                        {3.0, phy::OfdmMcs::k6Mbps, 6.0}};
  for (const Step& step : steps) {
    ASSERT_DOUBLE_EQ(mesh::snr_to_rate_mbps(step.snr_db), step.rate);
    const LinkResult r =
        run_ofdm_link(step.mcs, 1000, 30, step.snr_db + 1.0, rng);
    EXPECT_LT(r.per(), 0.35) << "rate " << step.rate << " at its threshold";
  }
}

}  // namespace
}  // namespace wlan

// Tests for packet acquisition: STF detection, timing, CFO estimation.
#include <gtest/gtest.h>

#include <cmath>

#include "channel/awgn.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/units.h"
#include "dsp/ops.h"
#include "phy/ofdm.h"
#include "phy/plcp.h"
#include "phy/sync.h"

namespace wlan::phy {
namespace {

// Builds STF + PPDU with a random dead-air prefix, CFO, and noise.
struct TestSignal {
  CVec samples;
  std::size_t true_ltf_start;
  double true_cfo;
};

TestSignal make_signal(Rng& rng, OfdmMcs mcs, std::size_t psdu_bytes,
                       std::size_t prefix, double cfo, double snr_db) {
  const Bytes psdu = rng.random_bytes(psdu_bytes);
  CVec wave = prepend_stf(ofdm_transmit_ppdu(mcs, psdu));
  const double power = dsp::mean_power(wave);
  apply_cfo(wave, cfo);
  CVec samples(prefix, Cplx{0.0, 0.0});
  samples.insert(samples.end(), wave.begin(), wave.end());
  samples.resize(samples.size() + 100, Cplx{0.0, 0.0});
  channel::add_awgn(samples, rng, power / db_to_lin(snr_db));
  return {std::move(samples), prefix + 160, cfo};
}

TEST(Stf, TenSixteenSamplePeriods) {
  const CVec stf = ofdm_stf_waveform();
  ASSERT_EQ(stf.size(), 160u);
  for (std::size_t i = 16; i < stf.size(); ++i) {
    EXPECT_NEAR(std::abs(stf[i] - stf[i - 16]), 0.0, 1e-12) << "sample " << i;
  }
}

TEST(Stf, NonTrivialPower) {
  const CVec stf = ofdm_stf_waveform();
  EXPECT_GT(dsp::mean_power(stf), 1e-4);
}

TEST(Cfo, ApplyIsExactRotation) {
  CVec x(100, Cplx{1.0, 0.0});
  apply_cfo(x, 0.01);
  // Sample 25: phase 2*pi*0.01*25 = pi/2 -> value j.
  EXPECT_NEAR(std::abs(x[25] - Cplx(0.0, 1.0)), 0.0, 1e-12);
  // Magnitude preserved everywhere.
  for (const auto& v : x) EXPECT_NEAR(std::abs(v), 1.0, 1e-12);
}

TEST(Cfo, OppositeCfoCancels) {
  Rng rng(99);
  CVec x(64);
  for (auto& v : x) v = rng.cgaussian(1.0);
  const CVec original = x;
  apply_cfo(x, 0.007);
  apply_cfo(x, -0.007);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(x[i] - original[i]), 0.0, 1e-10);
  }
}

TEST(Detect, FindsLtfStartExactlyInCleanSignal) {
  Rng rng(1);
  const TestSignal sig = make_signal(rng, OfdmMcs::k12Mbps, 100,
                                     /*prefix=*/333, /*cfo=*/0.0, 60.0);
  const auto sync = detect_ppdu(sig.samples);
  ASSERT_TRUE(sync.has_value());
  EXPECT_EQ(sync->ltf_start, sig.true_ltf_start);
  EXPECT_NEAR(sync->cfo_norm, 0.0, 1e-4);
}

TEST(Detect, EstimatesCfoAccurately) {
  Rng rng(2);
  for (const double cfo : {-0.01, -0.002, 0.001, 0.005, 0.015}) {
    const TestSignal sig = make_signal(rng, OfdmMcs::k12Mbps, 80, 200, cfo, 30.0);
    const auto sync = detect_ppdu(sig.samples);
    ASSERT_TRUE(sync.has_value()) << "cfo " << cfo;
    EXPECT_NEAR(sync->cfo_norm, cfo, 5e-4) << "cfo " << cfo;
  }
}

TEST(Detect, NoFalseAlarmOnNoise) {
  Rng rng(3);
  CVec noise(4000);
  for (auto& v : noise) v = rng.cgaussian(1.0);
  EXPECT_FALSE(detect_ppdu(noise).has_value());
}

TEST(Detect, NoDetectionOnSilence) {
  const CVec silence(4000, Cplx{0.0, 0.0});
  EXPECT_FALSE(detect_ppdu(silence).has_value());
}

TEST(Detect, TimingWithinCyclicPrefixAtModerateSnr) {
  Rng rng(4);
  int hits = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    const std::size_t prefix = 100 + rng.uniform_int(400);
    const TestSignal sig =
        make_signal(rng, OfdmMcs::k12Mbps, 60, prefix, 0.004, 15.0);
    const auto sync = detect_ppdu(sig.samples);
    if (!sync) continue;
    // Early by up to the CP is benign; late is not.
    if (sync->ltf_start <= sig.true_ltf_start &&
        sig.true_ltf_start - sync->ltf_start <= OfdmPhy::kCpLen) {
      ++hits;
    } else if (sync->ltf_start == sig.true_ltf_start) {
      ++hits;
    }
  }
  EXPECT_GE(hits, trials - 2);
}

TEST(EndToEnd, AcquireCorrectAndDecodeWithCfo) {
  // The full chain the library otherwise idealizes: unknown start, 0.8%
  // CFO (~250 kHz at 20 MHz -> beyond 802.11's +-232 kHz worst case),
  // detect, correct, decode the self-describing PPDU.
  Rng rng(5);
  int decoded_ok = 0;
  const int trials = 15;
  for (int t = 0; t < trials; ++t) {
    const Bytes psdu = rng.random_bytes(120);
    CVec wave = prepend_stf(ofdm_transmit_ppdu(OfdmMcs::k12Mbps, psdu));
    const double power = dsp::mean_power(wave);
    const double cfo = 0.008;
    apply_cfo(wave, cfo);
    const std::size_t prefix = 150 + rng.uniform_int(300);
    CVec samples(prefix, Cplx{0.0, 0.0});
    samples.insert(samples.end(), wave.begin(), wave.end());
    const double nv = power / db_to_lin(25.0);
    channel::add_awgn(samples, rng, nv);

    const auto sync = detect_ppdu(samples);
    if (!sync) continue;
    CVec corrected(samples.begin() + static_cast<std::ptrdiff_t>(sync->ltf_start),
                   samples.end());
    apply_cfo(corrected, -sync->cfo_norm);
    const auto out = ofdm_receive_ppdu(corrected, nv);
    if (out && *out == psdu) ++decoded_ok;
  }
  EXPECT_GE(decoded_ok, trials - 2);
}

}  // namespace
}  // namespace wlan::phy

// Unit + property tests for the complex linear algebra substrate.
#include <gtest/gtest.h>

#include <cmath>

#include "channel/mimo.h"
#include "common/check.h"
#include "common/rng.h"
#include "linalg/cmatrix.h"
#include "linalg/decompose.h"

namespace wlan::linalg {
namespace {

CMatrix random_matrix(Rng& rng, std::size_t r, std::size_t c) {
  CMatrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.cgaussian(1.0);
  }
  return m;
}

TEST(CMatrixTest, IdentityMultiplication) {
  Rng rng(1);
  const CMatrix a = random_matrix(rng, 3, 3);
  const CMatrix i = CMatrix::identity(3);
  EXPECT_LT(max_abs_diff(a * i, a), 1e-12);
  EXPECT_LT(max_abs_diff(i * a, a), 1e-12);
}

TEST(CMatrixTest, InitializerList) {
  const CMatrix m{{Cplx{1, 0}, Cplx{2, 0}}, {Cplx{3, 0}, Cplx{4, 0}}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0).real(), 3.0);
}

TEST(CMatrixTest, RaggedInitializerRejected) {
  EXPECT_THROW((CMatrix{{Cplx{1, 0}}, {Cplx{1, 0}, Cplx{2, 0}}}), ContractError);
}

TEST(CMatrixTest, HermitianConjugates) {
  const CMatrix m{{Cplx{1, 2}, Cplx{3, -4}}, {Cplx{0, 1}, Cplx{5, 0}}};
  const CMatrix h = m.hermitian();
  EXPECT_EQ(h(0, 1), std::conj(m(1, 0)));
  EXPECT_EQ(h(1, 0), std::conj(m(0, 1)));
}

TEST(CMatrixTest, TransposeVsHermitianOnReal) {
  Rng rng(2);
  CMatrix m(2, 3);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) m(i, j) = rng.gaussian();
  }
  EXPECT_LT(max_abs_diff(m.transpose(), m.hermitian()), 1e-15);
}

TEST(CMatrixTest, SizeMismatchThrows) {
  CMatrix a(2, 2);
  const CMatrix b(3, 3);
  EXPECT_THROW(a += b, ContractError);
  EXPECT_THROW(a * b, ContractError);
}

TEST(CMatrixTest, MatrixVectorProduct) {
  const CMatrix m{{Cplx{1, 0}, Cplx{0, 1}}, {Cplx{2, 0}, Cplx{0, 0}}};
  const CVec x = {Cplx{1, 0}, Cplx{1, 0}};
  const CVec y = m * x;
  EXPECT_NEAR(std::abs(y[0] - Cplx(1, 1)), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(y[1] - Cplx(2, 0)), 0.0, 1e-14);
}

TEST(CMatrixTest, FrobeniusNorm) {
  const CMatrix m{{Cplx{3, 0}, Cplx{0, 4}}};
  EXPECT_NEAR(m.frobenius_norm(), 5.0, 1e-12);
}

TEST(SolveTest, RecoversKnownSolution) {
  Rng rng(3);
  for (std::size_t n : {2u, 3u, 4u, 6u}) {
    const CMatrix a = random_matrix(rng, n, n);
    CVec x_true(n);
    for (auto& v : x_true) v = rng.cgaussian(1.0);
    const CVec b = a * x_true;
    const CVec x = solve(a, b);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(std::abs(x[i] - x_true[i]), 0.0, 1e-9) << "n=" << n;
    }
  }
}

TEST(SolveTest, SingularThrows) {
  CMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 0) = 2.0;  // rank 1
  a(0, 1) = 3.0;
  a(1, 1) = 6.0;
  const CVec b = {Cplx{1, 0}, Cplx{0, 0}};
  EXPECT_THROW(solve(a, b), ContractError);
}

TEST(InverseTest, RoundTrip) {
  Rng rng(4);
  for (std::size_t n : {1u, 2u, 3u, 4u, 5u}) {
    const CMatrix a = random_matrix(rng, n, n);
    const CMatrix ainv = inverse(a);
    EXPECT_LT(max_abs_diff(a * ainv, CMatrix::identity(n)), 1e-9) << "n=" << n;
  }
}

TEST(DeterminantTest, KnownValues) {
  const CMatrix a{{Cplx{2, 0}, Cplx{0, 0}}, {Cplx{0, 0}, Cplx{3, 0}}};
  EXPECT_NEAR(std::abs(determinant(a) - Cplx(6, 0)), 0.0, 1e-12);
  const CMatrix rot{{Cplx{0, 1}, Cplx{0, 0}}, {Cplx{0, 0}, Cplx{0, 1}}};
  EXPECT_NEAR(std::abs(determinant(rot) - Cplx(-1, 0)), 0.0, 1e-12);
}

TEST(DeterminantTest, ProductRule) {
  Rng rng(5);
  const CMatrix a = random_matrix(rng, 3, 3);
  const CMatrix b = random_matrix(rng, 3, 3);
  const Cplx lhs = determinant(a * b);
  const Cplx rhs = determinant(a) * determinant(b);
  EXPECT_NEAR(std::abs(lhs - rhs), 0.0, 1e-8 * std::abs(rhs) + 1e-10);
}

TEST(CholeskyTest, ReconstructsHpdMatrix) {
  Rng rng(6);
  const CMatrix b = random_matrix(rng, 4, 4);
  CMatrix a = b * b.hermitian();
  for (std::size_t i = 0; i < 4; ++i) a(i, i) += 0.5;  // ensure PD
  const CMatrix l = cholesky(a);
  EXPECT_LT(max_abs_diff(l * l.hermitian(), a), 1e-9);
}

TEST(CholeskyTest, RejectsIndefinite) {
  CMatrix a = CMatrix::identity(2);
  a(1, 1) = -1.0;
  EXPECT_THROW(cholesky(a), ContractError);
}

TEST(LogDetTest, MatchesDeterminant) {
  Rng rng(7);
  const CMatrix b = random_matrix(rng, 3, 3);
  CMatrix a = b * b.hermitian();
  for (std::size_t i = 0; i < 3; ++i) a(i, i) += 1.0;
  const double direct = std::log2(std::abs(determinant(a)));
  EXPECT_NEAR(log2_det_hermitian(a), direct, 1e-8);
}

class SvdShapes : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(SvdShapes, ReconstructionAndOrthonormality) {
  const auto [rows, cols] = GetParam();
  Rng rng(100 + rows * 10 + cols);
  const CMatrix a = random_matrix(rng, rows, cols);
  const Svd dec = svd(a);
  const std::size_t k = std::min(rows, cols);
  ASSERT_EQ(dec.s.size(), k);
  // Singular values descending and non-negative.
  for (std::size_t i = 0; i + 1 < k; ++i) {
    EXPECT_GE(dec.s[i], dec.s[i + 1]);
  }
  for (const double s : dec.s) EXPECT_GE(s, 0.0);
  // Reconstruction U diag(s) V^H = A.
  CMatrix usv(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      Cplx acc{0.0, 0.0};
      for (std::size_t i = 0; i < k; ++i) {
        acc += dec.u(r, i) * dec.s[i] * std::conj(dec.v(c, i));
      }
      usv(r, c) = acc;
    }
  }
  EXPECT_LT(max_abs_diff(usv, a), 1e-8);
  // U^H U = I and V^H V = I.
  EXPECT_LT(max_abs_diff(dec.u.hermitian() * dec.u, CMatrix::identity(k)), 1e-8);
  EXPECT_LT(max_abs_diff(dec.v.hermitian() * dec.v, CMatrix::identity(k)), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, SvdShapes,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{2, 2},
                      std::pair<std::size_t, std::size_t>{3, 3},
                      std::pair<std::size_t, std::size_t>{4, 4},
                      std::pair<std::size_t, std::size_t>{4, 2},
                      std::pair<std::size_t, std::size_t>{2, 4},
                      std::pair<std::size_t, std::size_t>{6, 3}));

TEST(SvdTest, DiagonalMatrix) {
  CMatrix a(3, 3);
  a(0, 0) = 3.0;
  a(1, 1) = 1.0;
  a(2, 2) = 2.0;
  const Svd dec = svd(a);
  EXPECT_NEAR(dec.s[0], 3.0, 1e-10);
  EXPECT_NEAR(dec.s[1], 2.0, 1e-10);
  EXPECT_NEAR(dec.s[2], 1.0, 1e-10);
}

TEST(SvdTest, FrobeniusEqualsSingularValueEnergy) {
  Rng rng(8);
  const CMatrix a = random_matrix(rng, 4, 4);
  const Svd dec = svd(a);
  double energy = 0.0;
  for (const double s : dec.s) energy += s * s;
  EXPECT_NEAR(std::sqrt(energy), a.frobenius_norm(), 1e-9);
}

TEST(CapacityTest, SisoMatchesShannon) {
  CMatrix h(1, 1);
  h(0, 0) = 1.0;
  for (const double snr_db : {0.0, 10.0, 20.0}) {
    const double snr = std::pow(10.0, snr_db / 10.0);
    EXPECT_NEAR(mimo_capacity_bps_hz(h, snr), std::log2(1.0 + snr), 1e-12);
  }
}

TEST(CapacityTest, GrowsRoughlyLinearlyInAntennas) {
  // Ergodic capacity at 20 dB: 4x4 should be close to 4x the 1x1 value.
  Rng rng(9);
  const double snr = 100.0;
  const int trials = 400;
  double c1 = 0.0;
  double c4 = 0.0;
  for (int t = 0; t < trials; ++t) {
    c1 += mimo_capacity_bps_hz(channel::iid_rayleigh_matrix(rng, 1, 1), snr);
    c4 += mimo_capacity_bps_hz(channel::iid_rayleigh_matrix(rng, 4, 4), snr);
  }
  c1 /= trials;
  c4 /= trials;
  EXPECT_GT(c4, 3.0 * c1);
  EXPECT_LT(c4, 5.0 * c1);
}

TEST(CapacityTest, MonotoneInSnr) {
  Rng rng(10);
  const CMatrix h = channel::iid_rayleigh_matrix(rng, 2, 2);
  double prev = 0.0;
  for (double snr_db = 0.0; snr_db <= 30.0; snr_db += 5.0) {
    const double c = mimo_capacity_bps_hz(h, std::pow(10.0, snr_db / 10.0));
    EXPECT_GT(c, prev);
    prev = c;
  }
}

TEST(WaterfillingTest, NeverWorseThanEqualPower) {
  Rng rng(11);
  for (int t = 0; t < 50; ++t) {
    const CMatrix h = channel::iid_rayleigh_matrix(rng, 3, 3);
    const Svd dec = svd(h);
    const double snr = 10.0;
    const double equal = mimo_capacity_bps_hz(h, snr);
    const double wf = waterfilling_capacity_bps_hz(dec.s, snr);
    EXPECT_GE(wf, equal - 1e-9);
  }
}

TEST(WaterfillingTest, SingleModeMatchesShannon) {
  const RVec s = {2.0};
  const double snr = 5.0;
  EXPECT_NEAR(waterfilling_capacity_bps_hz(s, snr), std::log2(1.0 + 4.0 * snr),
              1e-12);
}

TEST(WaterfillingTest, LowSnrUsesOnlyStrongestMode) {
  // At very low SNR all power goes to the best eigenmode.
  const RVec s = {2.0, 0.1};
  const double snr = 0.01;
  EXPECT_NEAR(waterfilling_capacity_bps_hz(s, snr),
              std::log2(1.0 + 4.0 * snr), 1e-6);
}

}  // namespace
}  // namespace wlan::linalg

// Tests for cooperative (decode-and-forward) diversity.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "common/units.h"
#include "coop/coop.h"

namespace wlan::coop {
namespace {

TEST(Coop, DirectOutageMatchesClosedForm) {
  // Rayleigh: P_out = 1 - exp(-(2^R - 1)/gamma).
  CoopConfig cfg;
  cfg.scheme = Scheme::kDirect;
  cfg.target_rate_bps_hz = 2.0;
  cfg.mean_snr_sd_db = 10.0;
  Rng rng(1);
  const CoopResult r = simulate(cfg, 200000, rng);
  const double gamma = db_to_lin(10.0);
  const double theory = 1.0 - std::exp(-(std::pow(2.0, 2.0) - 1.0) / gamma);
  EXPECT_NEAR(r.outage_probability, theory, 0.01);
}

TEST(Coop, DirectHasNoRelayAirtime) {
  CoopConfig cfg;
  cfg.scheme = Scheme::kDirect;
  Rng rng(2);
  const CoopResult r = simulate(cfg, 1000, rng);
  EXPECT_DOUBLE_EQ(r.relay_airtime_fraction, 0.0);
  EXPECT_DOUBLE_EQ(r.relay_decode_fraction, 0.0);
}

TEST(Coop, CooperationImprovesOutageAtHighSnr) {
  Rng rng(3);
  CoopConfig direct;
  direct.scheme = Scheme::kDirect;
  direct.target_rate_bps_hz = 1.0;
  direct.mean_snr_sd_db = 15.0;
  CoopConfig coop = direct;
  coop.scheme = Scheme::kDfSelection;
  coop.mean_snr_sr_db = 20.0;
  coop.mean_snr_rd_db = 20.0;
  const CoopResult rd = simulate(direct, 100000, rng);
  const CoopResult rc = simulate(coop, 100000, rng);
  EXPECT_LT(rc.outage_probability, rd.outage_probability * 0.5);
}

TEST(Coop, DiversityOrderTwoSlope) {
  // Doubling SNR (in dB steps) should drop cooperative outage ~quadratically
  // but direct outage only ~linearly: check the slopes between 12 and 18 dB.
  Rng rng(4);
  auto outage = [&](Scheme scheme, double snr_db) {
    CoopConfig cfg;
    cfg.scheme = scheme;
    cfg.target_rate_bps_hz = 1.0;
    cfg.mean_snr_sd_db = snr_db;
    cfg.mean_snr_sr_db = snr_db + 5.0;
    cfg.mean_snr_rd_db = snr_db + 5.0;
    return simulate(cfg, 400000, rng).outage_probability;
  };
  const double d1 = outage(Scheme::kDirect, 12.0);
  const double d2 = outage(Scheme::kDirect, 18.0);
  const double c1 = outage(Scheme::kDfRepetition, 12.0);
  const double c2 = outage(Scheme::kDfRepetition, 18.0);
  const double direct_slope = std::log10(d1 / d2) / 0.6;   // per 10 dB
  const double coop_slope = std::log10(c1 / c2) / 0.6;
  EXPECT_NEAR(direct_slope, 1.0, 0.35);
  EXPECT_GT(coop_slope, 1.5);  // diversity order ~2
}

TEST(Coop, RelayDecodesMoreOftenWithBetterSourceRelayLink) {
  Rng rng(5);
  CoopConfig weak;
  weak.scheme = Scheme::kDfSelection;
  weak.mean_snr_sr_db = 5.0;
  CoopConfig strong = weak;
  strong.mean_snr_sr_db = 25.0;
  const CoopResult rw = simulate(weak, 50000, rng);
  const CoopResult rs = simulate(strong, 50000, rng);
  EXPECT_GT(rs.relay_decode_fraction, rw.relay_decode_fraction);
  EXPECT_GT(rs.relay_decode_fraction, 0.9);
}

TEST(Coop, RelayCarriesAirtimeWhenItDecodes) {
  Rng rng(6);
  CoopConfig cfg;
  cfg.scheme = Scheme::kDfSelection;
  cfg.mean_snr_sr_db = 30.0;  // relay almost always decodes
  const CoopResult r = simulate(cfg, 20000, rng);
  EXPECT_NEAR(r.relay_airtime_fraction, 0.5 * r.relay_decode_fraction, 1e-9);
  EXPECT_GT(r.relay_airtime_fraction, 0.45);
}

TEST(Coop, HalfDuplexRatePenaltyVisibleAtHighSnr) {
  // When the direct link is already strong, the two-slot protocol halves
  // the usable rate: cooperation should show HIGHER mean capacity loss.
  Rng rng(7);
  CoopConfig direct;
  direct.scheme = Scheme::kDirect;
  direct.mean_snr_sd_db = 30.0;
  CoopConfig coop = direct;
  coop.scheme = Scheme::kDfRepetition;
  coop.mean_snr_sr_db = 30.0;
  coop.mean_snr_rd_db = 30.0;
  const CoopResult rd = simulate(direct, 50000, rng);
  const CoopResult rc = simulate(coop, 50000, rng);
  EXPECT_GT(rd.mean_capacity_bps_hz, rc.mean_capacity_bps_hz);
}

TEST(Coop, GeometryConfigOrdersLinkSnrs) {
  channel::PathLossModel pl;
  const CoopConfig cfg = geometry_config(Scheme::kDfSelection, 1.0, 60.0, 0.5,
                                         pl, 17.0);
  // Relay at midpoint: both relay links stronger than the direct link.
  EXPECT_GT(cfg.mean_snr_sr_db, cfg.mean_snr_sd_db);
  EXPECT_GT(cfg.mean_snr_rd_db, cfg.mean_snr_sd_db);
  EXPECT_NEAR(cfg.mean_snr_sr_db, cfg.mean_snr_rd_db, 1e-9);
}

TEST(Coop, GeometryValidatesRelayPosition) {
  channel::PathLossModel pl;
  EXPECT_THROW(geometry_config(Scheme::kDirect, 1.0, 60.0, 0.0, pl, 17.0),
               wlan::ContractError);
  EXPECT_THROW(geometry_config(Scheme::kDirect, 1.0, 60.0, 1.0, pl, 17.0),
               wlan::ContractError);
  EXPECT_THROW(geometry_config(Scheme::kDirect, 1.0, -5.0, 0.5, pl, 17.0),
               wlan::ContractError);
}

TEST(Coop, RejectsDegenerateInputs) {
  CoopConfig cfg;
  Rng rng(8);
  EXPECT_THROW(simulate(cfg, 0, rng), wlan::ContractError);
  cfg.target_rate_bps_hz = 0.0;
  EXPECT_THROW(simulate(cfg, 10, rng), wlan::ContractError);
}

}  // namespace
}  // namespace wlan::coop

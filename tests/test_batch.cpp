// Trial-batched SIMD Monte-Carlo: the bitwise contract of the batched
// double-precision paths (kernels and link runners, across lane counts,
// vector toggles, thread counts, and non-multiple trial counts), the
// PER-delta tolerance of the quantized int16 fast paths, and the
// zero-allocation warm-loop property of the batched receiver.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "core/link.h"
#include "dsp/batch.h"
#include "dsp/simd.h"
#include "obs/metrics.h"
#include "par/pool.h"
#include "phy/convolutional.h"
#include "phy/ldpc.h"
#include "phy/ofdm.h"
#include "phy/workspace.h"
#include "support/alloc_hook.h"

namespace wlan {
namespace {

// Forces the vector path on or off for the duration of a scope.
class ScopedVector {
 public:
  explicit ScopedVector(bool enabled)
      : saved_(dsp::simd::vector_enabled()) {
    dsp::simd::set_vector_enabled(enabled);
  }
  ~ScopedVector() { dsp::simd::set_vector_enabled(saved_); }

 private:
  bool saved_;
};

// Rate-1/2 coded LLRs for a random terminated info sequence: the true
// info bits (with 6 zero tail bits) and noisy soft values, positive
// meaning bit 0.
struct TrellisLane {
  Bits info;
  RVec llrs;
};

TrellisLane make_trellis_lane(std::size_t n_payload, double noise_sigma,
                              Rng& rng) {
  TrellisLane lane;
  lane.info.resize(n_payload + 6);
  for (std::size_t i = 0; i < n_payload; ++i) {
    lane.info[i] = static_cast<std::uint8_t>(rng.uniform_int(2));
  }
  for (std::size_t i = 0; i < 6; ++i) lane.info[n_payload + i] = 0;
  const Bits coded = phy::convolutional_encode(lane.info);
  lane.llrs.resize(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    lane.llrs[i] =
        (coded[i] ? -4.0 : 4.0) + rng.gaussian(0.0, noise_sigma);
  }
  return lane;
}

void expect_link_equal(const LinkResult& a, const LinkResult& b) {
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.packet_errors, b.packet_errors);
  EXPECT_EQ(a.bits, b.bits);
  EXPECT_EQ(a.bit_errors, b.bit_errors);
}

// --- batched Viterbi -------------------------------------------------

TEST(ViterbiBatch, BitwiseMatchesScalarAcrossLaneCountsAndVectorToggle) {
  const std::size_t n_payload = 210;
  phy::Workspace ws;
  for (const bool vec : {false, true}) {
    ScopedVector guard(vec);
    for (const std::size_t lanes : {1u, 2u, 3u, 4u, 5u, 8u, 16u}) {
      Rng rng(1000 + lanes);
      std::vector<TrellisLane> tls;
      for (std::size_t l = 0; l < lanes; ++l) {
        tls.push_back(make_trellis_lane(n_payload, 1.5, rng));
      }
      const std::size_t n_llrs = tls[0].llrs.size();
      RVec soa(n_llrs * lanes);
      for (std::size_t l = 0; l < lanes; ++l) {
        dsp::batch::scatter_lane(std::span<const double>(tls[l].llrs), l,
                                 lanes, soa.data());
      }
      Bits decoded_soa;
      phy::viterbi_decode_batch_into(soa, lanes, true, decoded_soa, ws);
      ASSERT_EQ(decoded_soa.size(), (n_llrs / 2) * lanes);

      Bits scalar;
      Bits lane_bits(n_llrs / 2);
      for (std::size_t l = 0; l < lanes; ++l) {
        phy::viterbi_decode_into(tls[l].llrs, true, scalar, ws);
        dsp::batch::gather_lane(decoded_soa.data(), l, lanes,
                                std::span<std::uint8_t>(lane_bits));
        EXPECT_EQ(lane_bits, scalar)
            << "vec=" << vec << " lanes=" << lanes << " lane=" << l;
      }
    }
  }
}

TEST(ViterbiBatch, BitwiseMatchesScalarUnterminated) {
  const std::size_t lanes = 4;
  phy::Workspace ws;
  Rng rng(77);
  std::vector<TrellisLane> tls;
  for (std::size_t l = 0; l < lanes; ++l) {
    tls.push_back(make_trellis_lane(120, 2.0, rng));
  }
  const std::size_t n_llrs = tls[0].llrs.size();
  RVec soa(n_llrs * lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    dsp::batch::scatter_lane(std::span<const double>(tls[l].llrs), l, lanes,
                             soa.data());
  }
  for (const bool vec : {false, true}) {
    ScopedVector guard(vec);
    Bits decoded_soa;
    phy::viterbi_decode_batch_into(soa, lanes, false, decoded_soa, ws);
    Bits scalar;
    Bits lane_bits(n_llrs / 2);
    for (std::size_t l = 0; l < lanes; ++l) {
      phy::viterbi_decode_into(tls[l].llrs, false, scalar, ws);
      dsp::batch::gather_lane(decoded_soa.data(), l, lanes,
                              std::span<std::uint8_t>(lane_bits));
      EXPECT_EQ(lane_bits, scalar) << "vec=" << vec << " lane=" << l;
    }
  }
}

TEST(ViterbiQuant, DeterministicAcrossVectorToggleAndDecodesCleanLlrs) {
  const std::size_t lanes = 16;  // multiple of every int16 SIMD width
  phy::Workspace ws;
  Rng rng(5);
  std::vector<TrellisLane> tls;
  for (std::size_t l = 0; l < lanes; ++l) {
    tls.push_back(make_trellis_lane(200, 0.0, rng));
  }
  const std::size_t n_llrs = tls[0].llrs.size();
  RVec soa(n_llrs * lanes);
  double maxabs = 0.0;
  for (std::size_t l = 0; l < lanes; ++l) {
    dsp::batch::scatter_lane(std::span<const double>(tls[l].llrs), l, lanes,
                             soa.data());
    for (const double x : tls[l].llrs) maxabs = std::max(maxabs, std::abs(x));
  }
  const double scale = 96.0 / maxabs;

  Bits with_vec;
  {
    ScopedVector on(true);
    phy::viterbi_decode_batch_i16_into(soa, lanes, true, scale, with_vec, ws);
  }
  Bits without_vec;
  {
    ScopedVector off(false);
    phy::viterbi_decode_batch_i16_into(soa, lanes, true, scale, without_vec,
                                       ws);
  }
  EXPECT_EQ(with_vec, without_vec);

  Bits lane_bits(n_llrs / 2);
  for (std::size_t l = 0; l < lanes; ++l) {
    dsp::batch::gather_lane(with_vec.data(), l, lanes,
                            std::span<std::uint8_t>(lane_bits));
    EXPECT_EQ(lane_bits, tls[l].info) << "lane=" << l;
  }
}

// --- batched LDPC ----------------------------------------------------

TEST(LdpcBatch, BitwiseMatchesScalarAcrossLaneCounts) {
  const phy::LdpcCode code(648, 324, 12);
  phy::Workspace ws;
  for (const std::size_t lanes : {1u, 3u, 4u, 8u}) {
    Rng rng(400 + lanes);
    std::vector<RVec> lane_llrs(lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
      Bits info(code.info_length());
      for (auto& b : info) b = static_cast<std::uint8_t>(rng.uniform_int(2));
      const Bits cw = code.encode(info);
      lane_llrs[l].resize(cw.size());
      for (std::size_t i = 0; i < cw.size(); ++i) {
        lane_llrs[l][i] = (cw[i] ? -1.0 : 1.0) + rng.gaussian(0.0, 0.9);
      }
    }
    RVec soa(code.block_length() * lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
      dsp::batch::scatter_lane(std::span<const double>(lane_llrs[l]), l,
                               lanes, soa.data());
    }
    std::vector<phy::LdpcCode::DecodeResult> batch(lanes);
    code.decode_batch_into(soa, lanes, 40, 0.8, batch, ws);
    phy::LdpcCode::DecodeResult scalar;
    for (std::size_t l = 0; l < lanes; ++l) {
      code.decode_into(lane_llrs[l], 40, 0.8, scalar, ws);
      EXPECT_EQ(batch[l].info, scalar.info) << "lanes=" << lanes << " l=" << l;
      EXPECT_EQ(batch[l].parity_ok, scalar.parity_ok);
      EXPECT_EQ(batch[l].iterations, scalar.iterations);
    }
  }
}

TEST(LdpcQuant, DeterministicAcrossVectorToggleAndDecodesModerateNoise) {
  const phy::LdpcCode code(648, 324, 12);
  phy::Workspace ws;
  const std::size_t lanes = 8;
  Rng rng(9);
  std::vector<Bits> infos(lanes);
  RVec soa(code.block_length() * lanes);
  double maxabs = 0.0;
  std::vector<RVec> lane_llrs(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    infos[l].resize(code.info_length());
    for (auto& b : infos[l]) b = static_cast<std::uint8_t>(rng.uniform_int(2));
    const Bits cw = code.encode(infos[l]);
    lane_llrs[l].resize(cw.size());
    for (std::size_t i = 0; i < cw.size(); ++i) {
      lane_llrs[l][i] = (cw[i] ? -2.0 : 2.0) + rng.gaussian(0.0, 0.5);
      maxabs = std::max(maxabs, std::abs(lane_llrs[l][i]));
    }
    dsp::batch::scatter_lane(std::span<const double>(lane_llrs[l]), l, lanes,
                             soa.data());
  }
  const double scale = 96.0 / maxabs;

  std::vector<phy::LdpcCode::DecodeResult> with_vec(lanes);
  {
    ScopedVector on(true);
    code.decode_batch_i16_into(soa, lanes, 40, 0.8, scale, with_vec, ws);
  }
  std::vector<phy::LdpcCode::DecodeResult> without_vec(lanes);
  {
    ScopedVector off(false);
    code.decode_batch_i16_into(soa, lanes, 40, 0.8, scale, without_vec, ws);
  }
  for (std::size_t l = 0; l < lanes; ++l) {
    EXPECT_EQ(with_vec[l].info, without_vec[l].info) << "l=" << l;
    EXPECT_EQ(with_vec[l].parity_ok, without_vec[l].parity_ok);
    EXPECT_EQ(with_vec[l].iterations, without_vec[l].iterations);
    EXPECT_TRUE(with_vec[l].parity_ok) << "l=" << l;
    EXPECT_EQ(with_vec[l].info, infos[l]) << "l=" << l;
  }
}

// --- batched link runners --------------------------------------------

TEST(OfdmBatchRunner, BitwiseMatchesScalarRunnerAcrossLaneCounts) {
  // 13 trials deliberately not a multiple of any lane count: the final
  // partial group must refill correctly and decode lane-exact.
  for (const std::size_t lanes : {1u, 4u, 8u}) {
    Rng scalar_rng(123);
    const LinkResult scalar =
        run_ofdm_link(phy::OfdmMcs::k12Mbps, 100, 13, 5.0, scalar_rng);
    Rng batch_rng(123);
    const LinkResult batched = run_ofdm_link_batched(
        phy::OfdmMcs::k12Mbps, 100, 13, 5.0, batch_rng, {lanes, false});
    expect_link_equal(scalar, batched);
    EXPECT_EQ(scalar_rng.next_u64(), batch_rng.next_u64())
        << "runners must consume the same Rng state";
  }
}

TEST(OfdmBatchRunner, BitwiseMatchesScalarAtHigherOrderMcs) {
  Rng scalar_rng(321);
  const LinkResult scalar =
      run_ofdm_link(phy::OfdmMcs::k54Mbps, 300, 16, 22.0, scalar_rng);
  Rng batch_rng(321);
  const LinkResult batched = run_ofdm_link_batched(
      phy::OfdmMcs::k54Mbps, 300, 16, 22.0, batch_rng, {8, false});
  expect_link_equal(scalar, batched);
}

TEST(OfdmBatchRunner, IdenticalAcrossThreadCounts) {
  auto run = [](unsigned jobs) {
    par::set_default_jobs(jobs);
    Rng rng(42);
    const LinkResult r = run_ofdm_link_batched(phy::OfdmMcs::k12Mbps, 100, 29,
                                               5.0, rng, {8, false});
    par::set_default_jobs(0);
    return r;
  };
  expect_link_equal(run(1), run(8));
}

TEST(HtBatchRunner, BccBitwiseMatchesScalarRunner) {
  phy::HtConfig cfg;
  cfg.mcs = 1;
  for (const std::size_t lanes : {5u, 8u}) {
    Rng scalar_rng(55);
    const LinkResult scalar = run_ht_link(cfg, 200, 11, 8.0, scalar_rng);
    Rng batch_rng(55);
    const LinkResult batched =
        run_ht_link_batched(cfg, 200, 11, 8.0, batch_rng, {lanes, false});
    expect_link_equal(scalar, batched);
  }
}

TEST(HtBatchRunner, LdpcBitwiseMatchesScalarRunner) {
  phy::HtConfig cfg;
  cfg.mcs = 1;
  cfg.coding = phy::HtCoding::kLdpc;
  Rng scalar_rng(66);
  const LinkResult scalar = run_ht_link(cfg, 200, 11, 8.0, scalar_rng);
  Rng batch_rng(66);
  const LinkResult batched =
      run_ht_link_batched(cfg, 200, 11, 8.0, batch_rng, {8, false});
  expect_link_equal(scalar, batched);
}

// --- quantized PER tolerance -----------------------------------------

// The quantized decoders are gated on PER deltas, not equality. Paired
// seeds put the double and int16 paths on identical noise realizations,
// so the delta below is pure decoder divergence, not sampling noise.
TEST(QuantizedPer, WithinToleranceAcrossSnrPointsPerMcs) {
  struct Point {
    phy::OfdmMcs mcs;
    double snr_db;
  };
  const Point points[] = {
      {phy::OfdmMcs::k12Mbps, 2.0},  {phy::OfdmMcs::k12Mbps, 3.5},
      {phy::OfdmMcs::k12Mbps, 5.0},  {phy::OfdmMcs::k36Mbps, 9.0},
      {phy::OfdmMcs::k36Mbps, 11.0}, {phy::OfdmMcs::k36Mbps, 13.0},
  };
  for (const auto& p : points) {
    Rng rng_d(2026);
    const LinkResult dbl =
        run_ofdm_link_batched(p.mcs, 100, 150, p.snr_db, rng_d, {8, false});
    Rng rng_q(2026);
    const LinkResult quant =
        run_ofdm_link_batched(p.mcs, 100, 150, p.snr_db, rng_q, {8, true});
    EXPECT_EQ(quant.packets, dbl.packets);
    EXPECT_NEAR(quant.per(), dbl.per(), 0.06)
        << "mcs=" << static_cast<int>(p.mcs) << " snr=" << p.snr_db;
  }
}

TEST(QuantizedPer, HtLdpcWithinTolerance) {
  phy::HtConfig cfg;
  cfg.mcs = 1;
  cfg.coding = phy::HtCoding::kLdpc;
  Rng rng_d(17);
  const LinkResult dbl = run_ht_link_batched(cfg, 200, 80, 6.0, rng_d,
                                             {8, false});
  Rng rng_q(17);
  const LinkResult quant = run_ht_link_batched(cfg, 200, 80, 6.0, rng_q,
                                               {8, true});
  EXPECT_EQ(quant.packets, dbl.packets);
  EXPECT_NEAR(quant.per(), dbl.per(), 0.1);
}

// --- warm-loop allocation and workspace telemetry --------------------

TEST(BatchWarmLoop, NoSteadyStateAllocationsInBatchedReceive) {
  const std::size_t kLanes = 8;
  const std::size_t kPsdu = 100;
  phy::OfdmPhy modem(phy::OfdmMcs::k12Mbps);
  phy::Workspace ws;
  Rng rng(31);

  std::array<Bytes, kLanes> psdus;
  std::array<CVec, kLanes> waves;
  std::array<phy::OfdmPhy::RxLane, kLanes> lanes;
  for (std::size_t l = 0; l < kLanes; ++l) {
    psdus[l].resize(kPsdu);
    rng.fill_bytes(psdus[l]);
    waves[l] = modem.transmit(psdus[l]);
    lanes[l] = {waves[l], 0.05};
  }
  std::array<Bytes, kLanes> out;

  for (const bool quantized : {false, true}) {
    // Two warm-up passes size every lease and thread-local buffer.
    for (int i = 0; i < 2; ++i) {
      modem.receive_batch_into(lanes, kPsdu, out, quantized, ws);
    }
    const std::size_t before = testsupport::allocation_count();
    for (int i = 0; i < 5; ++i) {
      modem.receive_batch_into(lanes, kPsdu, out, quantized, ws);
    }
    EXPECT_EQ(testsupport::allocation_count(), before)
        << "quantized=" << quantized;
    for (std::size_t l = 0; l < kLanes; ++l) {
      EXPECT_EQ(out[l], psdus[l]) << "l=" << l;
    }
  }
}

TEST(BatchWarmLoop, WorkspacePublishesBytesHighWater) {
  phy::OfdmPhy modem(phy::OfdmMcs::k12Mbps);
  phy::Workspace ws;
  Rng rng(32);
  Bytes psdu(100);
  rng.fill_bytes(psdu);
  const CVec wave = modem.transmit(psdu);
  const std::array<phy::OfdmPhy::RxLane, 4> lanes = {
      phy::OfdmPhy::RxLane{wave, 0.05}, phy::OfdmPhy::RxLane{wave, 0.05},
      phy::OfdmPhy::RxLane{wave, 0.05}, phy::OfdmPhy::RxLane{wave, 0.05}};
  std::array<Bytes, 4> out;
  modem.receive_batch_into(lanes, 100, out, true, ws);

  obs::Registry registry;
  ws.publish(registry);
  double rvec_peak = 0.0;
  double i16_peak = 0.0;
  rvec_peak = registry
                  .gauge("workspace.bytes_high_water",
                         {{std::string("pool"), std::string("rvec")}})
                  .value();
  i16_peak = registry
                 .gauge("workspace.bytes_high_water",
                        {{std::string("pool"), std::string("i16")}})
                 .value();
  // The batched receive leases the lane-major LLR block (doubles) and the
  // quantized decoder's int16 state, so both pools must report a peak.
  EXPECT_GT(rvec_peak, 0.0);
  EXPECT_GT(i16_peak, 0.0);
}

}  // namespace
}  // namespace wlan

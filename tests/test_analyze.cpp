// Tests for the analysis layer: JSON parsing, airtime accounting, the
// Chrome trace exporter, PHY link-quality probes, sink drop counters,
// and the bench regression gate.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "mac/frames.h"
#include "mac/timing.h"
#include "net/netsim.h"
#include "obs/analyze/airtime.h"
#include "obs/analyze/chrome_trace.h"
#include "obs/json.h"
#include "obs/probe.h"
#include "obs/regress.h"
#include "phy/ofdm.h"

namespace wlan::obs {
namespace {

// ---------------------------------------------------------------------------
// JSON parser
// ---------------------------------------------------------------------------

TEST(JsonParse, ScalarsAndNesting) {
  const JsonValue v = JsonValue::parse(
      R"({"a": 1.5, "b": [true, false, null, "x"], "c": {"d": -2e3}})");
  EXPECT_DOUBLE_EQ(v.at("a").as_number(), 1.5);
  const auto& arr = v.at("b").items();
  ASSERT_EQ(arr.size(), 4u);
  EXPECT_TRUE(arr[0].as_bool());
  EXPECT_FALSE(arr[1].as_bool());
  EXPECT_TRUE(arr[2].is_null());
  EXPECT_EQ(arr[3].as_string(), "x");
  EXPECT_DOUBLE_EQ(v.at("c").at("d").as_number(), -2000.0);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParse, StringEscapes) {
  const JsonValue v =
      JsonValue::parse(R"(["a\"b", "\\\n\t", "A", "é"])");
  const auto& arr = v.items();
  EXPECT_EQ(arr[0].as_string(), "a\"b");
  EXPECT_EQ(arr[1].as_string(), "\\\n\t");
  EXPECT_EQ(arr[2].as_string(), "A");
  EXPECT_EQ(arr[3].as_string(), "\xc3\xa9");  // UTF-8 e-acute
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse("{"), ContractError);
  EXPECT_THROW(JsonValue::parse("[1,]"), ContractError);
  EXPECT_THROW(JsonValue::parse("tru"), ContractError);
  EXPECT_THROW(JsonValue::parse("1 x"), ContractError);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), ContractError);
  EXPECT_THROW(JsonValue::parse(""), ContractError);
}

TEST(JsonParse, RoundTripsSinkOutput) {
  // What write_event_json emits must be what JsonValue::parse reads.
  TraceEvent e;
  e.time_s = 1.25;
  e.type = EventType::kTxStart;
  e.node = 3;
  e.peer = 1;
  e.flow = 0;
  e.value = 2e-3;
  e.detail = "DATA";
  std::ostringstream out;
  write_event_json(out, e);
  const JsonValue v = JsonValue::parse(out.str());
  EXPECT_DOUBLE_EQ(v.at("t").as_number(), 1.25);
  EXPECT_EQ(v.at("ev").as_string(), "TX_START");
  EXPECT_DOUBLE_EQ(v.at("node").as_number(), 3.0);
  EXPECT_EQ(v.at("detail").as_string(), "DATA");
}

// ---------------------------------------------------------------------------
// Sink drop counters
// ---------------------------------------------------------------------------

TEST(TraceSinks, RingReportsEvictedEvents) {
  RingTraceSink ring(4);
  TraceEvent e;
  for (int i = 0; i < 10; ++i) {
    e.time_s = i;
    ring.record(e);
  }
  EXPECT_EQ(ring.total(), 10u);
  EXPECT_EQ(ring.events().size(), 4u);
  EXPECT_EQ(ring.dropped(), 6u);
}

TEST(TraceSinks, JsonlReportsWriteFailures) {
  std::ostringstream out;
  JsonlTraceSink sink(out);
  TraceEvent e;
  sink.record(e);
  EXPECT_EQ(sink.lines(), 1u);
  EXPECT_EQ(sink.dropped(), 0u);
  out.setstate(std::ios::badbit);
  sink.record(e);
  sink.record(e);
  EXPECT_EQ(sink.lines(), 1u);
  EXPECT_EQ(sink.dropped(), 2u);
}

// ---------------------------------------------------------------------------
// Airtime accountant on a hand-built stream
// ---------------------------------------------------------------------------

TraceEvent tx_event(EventType type, double t, std::int32_t node,
                    const char* detail = "DATA") {
  TraceEvent e;
  e.time_s = t;
  e.type = type;
  e.node = node;
  e.detail = detail;
  return e;
}

TEST(AirtimeAccountant, PartitionsOverlappingTransmissions) {
  AirtimeAccountant::Config cfg;
  cfg.n_nodes = 2;
  cfg.n_flows = 0;
  AirtimeAccountant acc(cfg);
  // node 0 transmits [0, 2), node 1 transmits [1, 3); run ends at 4.
  acc.record(tx_event(EventType::kTxStart, 0.0, 0));
  acc.record(tx_event(EventType::kTxStart, 1.0, 1));
  acc.record(tx_event(EventType::kTxEnd, 2.0, 0));
  acc.record(tx_event(EventType::kTxEnd, 3.0, 1));
  const AirtimeReport& r = acc.finalize(4.0);
  EXPECT_DOUBLE_EQ(r.duration_s, 4.0);
  EXPECT_DOUBLE_EQ(r.busy_s, 2.0);       // [0,1) and [2,3)
  EXPECT_DOUBLE_EQ(r.collision_s, 1.0);  // [1,2)
  EXPECT_DOUBLE_EQ(r.idle_s, 1.0);       // [3,4)
  EXPECT_DOUBLE_EQ(r.nodes[0].tx_s, 2.0);
  EXPECT_DOUBLE_EQ(r.nodes[0].tx_overlap_s, 1.0);
  EXPECT_DOUBLE_EQ(r.nodes[1].tx_s, 2.0);
  EXPECT_DOUBLE_EQ(r.nodes[1].tx_overlap_s, 1.0);
  EXPECT_EQ(r.nodes[0].data_frames, 1u);
  EXPECT_NEAR(r.idle_fraction() + r.busy_fraction() + r.collision_fraction(),
              1.0, 1e-12);
}

TEST(AirtimeAccountant, BucketsDeliveriesIntoGoodputWindows) {
  AirtimeAccountant::Config cfg;
  cfg.n_nodes = 1;
  cfg.n_flows = 1;
  cfg.window_s = 0.01;
  cfg.payload_bits = 8000.0;
  AirtimeAccountant acc(cfg);
  TraceEvent e;
  e.type = EventType::kStateChange;
  e.node = 0;
  e.flow = 0;
  e.detail = "DELIVERED";
  e.time_s = 0.005;
  acc.record(e);
  e.time_s = 0.015;
  acc.record(e);
  e.time_s = 0.0151;
  acc.record(e);
  const AirtimeReport& r = acc.finalize(0.03);
  ASSERT_EQ(r.flows.size(), 1u);
  const FlowAirtime& f = r.flows[0];
  EXPECT_EQ(f.delivered, 3u);
  ASSERT_EQ(f.window_deliveries.size(), 3u);
  EXPECT_EQ(f.window_deliveries[0], 1u);
  EXPECT_EQ(f.window_deliveries[1], 2u);
  EXPECT_EQ(f.window_deliveries[2], 0u);
  // 2 deliveries x 8000 bits in a 10 ms window = 1.6 Mbps.
  EXPECT_DOUBLE_EQ(f.goodput_mbps[1], 1.6);
}

// ---------------------------------------------------------------------------
// Airtime ledger against the network simulator
// ---------------------------------------------------------------------------

struct StarSim {
  net::NetworkResult result;
  Registry registry;
};

// n_senders stations in a ring around one AP, all saturated downlink to
// the AP, everyone in carrier-sense range.
void run_star(StarSim& sim, std::size_t n_senders, double duration_s,
              unsigned seed) {
  std::vector<net::NodeConfig> nodes(n_senders + 1);
  std::vector<net::Flow> flows;
  for (std::size_t i = 0; i < n_senders; ++i) {
    const double angle =
        6.2832 * static_cast<double>(i) / static_cast<double>(n_senders);
    nodes[i].position = {10.0 * std::cos(angle), 10.0 * std::sin(angle)};
    flows.push_back({i, n_senders});
  }
  net::NetworkConfig cfg;
  cfg.duration_s = duration_s;
  cfg.airtime = true;
  cfg.registry = &sim.registry;
  Rng rng(seed);
  sim.result = net::simulate_network(cfg, nodes, flows, rng);
}

TEST(AirtimeNetSim, FiveNodeLedgerReconcilesWithRegistryCounters) {
  StarSim sim;
  run_star(sim, 4, 0.5, 11);
  const AirtimeReport& a = sim.result.airtime;
  ASSERT_EQ(a.nodes.size(), 5u);
  ASSERT_EQ(a.flows.size(), 4u);

  // Data frames in the ledger == the simulator's own net.data_tx counter.
  std::uint64_t ledger_data = 0;
  std::uint64_t ledger_rts = 0;
  for (const NodeAirtime& n : a.nodes) {
    ledger_data += n.data_frames;
    ledger_rts += n.rts_frames;
  }
  EXPECT_GT(ledger_data, 0u);
  EXPECT_EQ(ledger_data, sim.registry.counter("net.data_tx").value());
  EXPECT_EQ(ledger_rts, sim.registry.counter("net.rts_tx").value());

  // Per-flow deliveries match both the result struct and the registry.
  for (std::size_t f = 0; f < a.flows.size(); ++f) {
    const std::vector<Label> label{{"flow", std::to_string(f)}};
    EXPECT_EQ(a.flows[f].delivered, sim.result.flows[f].delivered);
    EXPECT_EQ(a.flows[f].delivered,
              sim.registry.counter("net.delivered", label).value());
    EXPECT_EQ(a.flows[f].delivered,
              sim.registry.counter("airtime.flow_delivered", label).value());
  }

  // The published gauges mirror the report.
  EXPECT_DOUBLE_EQ(sim.registry.gauge("airtime.busy_fraction").value(),
                   a.busy_fraction());
  EXPECT_DOUBLE_EQ(sim.registry.gauge("airtime.jain_goodput").value(),
                   a.jain_fairness_goodput());
}

TEST(AirtimeNetSim, TenNodeDcfPartitionSumsToOneAndTxAirtimeReconciles) {
  StarSim sim;
  run_star(sim, 9, 1.0, 42);
  const AirtimeReport& a = sim.result.airtime;
  ASSERT_EQ(a.nodes.size(), 10u);

  // The channel-time partition is exact by construction.
  EXPECT_NEAR(a.idle_fraction() + a.busy_fraction() + a.collision_fraction(),
              1.0, 1e-9);
  EXPECT_NEAR(a.idle_s + a.busy_s + a.collision_s, a.duration_s, 1e-9);
  EXPECT_GT(a.busy_s, 0.0);
  EXPECT_GT(a.collision_s, 0.0);  // 9 saturated contenders do collide

  // Per-node transmit airtime reconciles against the per-node frame
  // counters: every data frame occupies exactly one data-PPDU airtime
  // (a frame still in flight at the end may be truncated).
  const std::size_t mpdu =
      mac::mpdu_size_bytes(mac::FrameType::kData, 1000);
  const double t_data =
      mac::data_ppdu_duration_s(mac::PhyGeneration::kOfdm, 24.0, mpdu);
  for (std::size_t n = 0; n < 9; ++n) {
    const std::vector<Label> label{{"node", std::to_string(n)}};
    const std::uint64_t frames =
        sim.registry.counter("airtime.node_tx_frames", label).value();
    EXPECT_EQ(frames, a.nodes[n].tx_frames);
    EXPECT_GT(frames, 0u);
    const double expected =
        static_cast<double>(a.nodes[n].data_frames) * t_data;
    EXPECT_NEAR(a.nodes[n].tx_s, expected, t_data + 1e-9);
  }

  // Exact cross-ledger identity: every busy second has exactly one
  // non-overlapping transmitter, so sum(tx_s) - sum(tx_overlap_s) is
  // the channel's single-transmitter (busy) time.
  double node_tx = 0.0;
  double node_overlap = 0.0;
  for (const NodeAirtime& n : a.nodes) {
    node_tx += n.tx_s;
    node_overlap += n.tx_overlap_s;
  }
  EXPECT_NEAR(node_tx - node_overlap, a.busy_s, 1e-9);
}

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

TEST(ChromeTrace, NetworkRunProducesValidBalancedJson) {
  std::ostringstream out;
  {
    ChromeTraceSink sink(out);
    std::vector<net::NodeConfig> nodes(5);
    std::vector<net::Flow> flows;
    for (std::size_t i = 0; i < 4; ++i) {
      nodes[i].position = {5.0 + static_cast<double>(i), 0.0};
      flows.push_back({i, 4});
    }
    net::NetworkConfig cfg;
    cfg.duration_s = 0.05;
    cfg.rts_cts = true;  // exercise NAV ("X") events too
    cfg.trace = &sink;
    Rng rng(3);
    net::simulate_network(cfg, nodes, flows, rng);
    sink.close();
    EXPECT_EQ(sink.dropped(), 0u);
    EXPECT_GT(sink.events_written(), 100u);
  }

  const JsonValue doc = JsonValue::parse(out.str());
  const auto& events = doc.at("traceEvents").items();
  ASSERT_GT(events.size(), 100u);

  std::map<std::pair<int, int>, int> depth;  // (pid, tid) -> open B count
  bool saw_nav = false;
  bool saw_meta = false;
  for (const JsonValue& e : events) {
    const std::string ph = e.at("ph").as_string();
    if (ph == "M") {
      saw_meta = true;
      continue;
    }
    const auto key = std::make_pair(
        static_cast<int>(e.at("pid").as_number()),
        static_cast<int>(e.at("tid").as_number()));
    if (ph == "B") {
      ++depth[key];
    } else if (ph == "E") {
      --depth[key];
      ASSERT_GE(depth[key], 0) << "unmatched E on pid/tid " << key.first
                               << "/" << key.second;
    } else if (ph == "X") {
      saw_nav = true;
      EXPECT_GE(e.at("dur").as_number(), 0.0);
    }
  }
  for (const auto& [key, d] : depth) {
    EXPECT_EQ(d, 0) << "unclosed B on pid/tid " << key.first << "/"
                    << key.second;
  }
  EXPECT_TRUE(saw_nav);
  EXPECT_TRUE(saw_meta);
}

TEST(ChromeTrace, CountsUnmatchableEventsAsDropped) {
  std::ostringstream out;
  ChromeTraceSink sink(out);
  sink.record(tx_event(EventType::kTxEnd, 1.0, 0));   // E with no B
  sink.record(tx_event(EventType::kTxStart, 2.0, -1));  // no node id
  sink.close();
  EXPECT_EQ(sink.dropped(), 2u);
  sink.record(tx_event(EventType::kTxStart, 3.0, 0));  // after close
  EXPECT_EQ(sink.dropped(), 3u);
  EXPECT_NO_THROW(JsonValue::parse(out.str()));
}

// ---------------------------------------------------------------------------
// PHY link-quality probes
// ---------------------------------------------------------------------------

TEST(PhyProbes, DisabledByDefault) {
  EXPECT_EQ(probe_histogram(Probe::kOfdmEvm), nullptr);
}

TEST(PhyProbes, NoiselessQam64EvmMatchesAnalyticZero) {
  Registry reg;
  enable_phy_probes(reg);
  const phy::OfdmPhy phy(phy::OfdmMcs::k54Mbps);  // 64-QAM 3/4
  std::vector<std::uint8_t> psdu(200);
  for (std::size_t i = 0; i < psdu.size(); ++i) {
    psdu[i] = static_cast<std::uint8_t>(37 * i + 11);
  }
  const auto wave = phy.transmit(psdu);
  phy.receive(wave, psdu.size(), 1e-12);
  disable_phy_probes();

  const std::vector<Label> label{{"chain", "ofdm"}};
  const Histogram* evm = reg.find_histogram("probe.evm", label);
  ASSERT_NE(evm, nullptr);
  EXPECT_GT(evm->count(), 0u);
  // A clean loopback's EVM is analytically zero; all that remains is
  // FFT round-off, many orders below any real impairment.
  EXPECT_LT(evm->max(), 1e-9);
}

TEST(PhyProbes, AwgnEvmMatchesNoiseLevel) {
  Registry reg;
  enable_phy_probes(reg);
  const phy::OfdmPhy phy(phy::OfdmMcs::k54Mbps);
  std::vector<std::uint8_t> psdu(400);
  for (std::size_t i = 0; i < psdu.size(); ++i) {
    psdu[i] = static_cast<std::uint8_t>(91 * i + 3);
  }
  auto wave = phy.transmit(psdu);
  const double noise_var = 1e-6;
  Rng rng(5);
  for (auto& s : wave) s += rng.cgaussian(noise_var);
  phy.receive(wave, psdu.size(), noise_var);
  disable_phy_probes();

  const std::vector<Label> label{{"chain", "ofdm"}};
  const Histogram* evm = reg.find_histogram("probe.evm", label);
  ASSERT_NE(evm, nullptr);
  // Per-tone post-FFT noise variance is Nfft * noise_var (unnormalized
  // forward FFT); the two-symbol LTF average leaves half a bin of
  // channel-estimation noise on top, so the equalized error variance is
  // 1.5 * Nfft * noise_var and RMS EVM = sqrt(1.5 * 64e-6) ~ 9.8e-3.
  const double analytic = std::sqrt(1.5 * 64.0 * noise_var);
  EXPECT_NEAR(evm->mean(), analytic, 0.15 * analytic);
  // And the post-eq SNR probe should sit near -10*log10(64e-6) ~ 42 dB.
  const Histogram* snr = reg.find_histogram("probe.post_eq_snr_db", label);
  ASSERT_NE(snr, nullptr);
  EXPECT_NEAR(snr->mean(), -10.0 * std::log10(64.0 * noise_var), 3.0);
}

// ---------------------------------------------------------------------------
// Bench regression gate
// ---------------------------------------------------------------------------

constexpr const char* kAggregate =
    R"({"schema":"holtwlan-bench-aggregate-v1","reports":[
         {"id":"C2","verdict":"REPRODUCED",
          "metrics":{"gain_db":10.4,"crossing":null}},
         {"id":"C11","verdict":"REPRODUCED",
          "metrics":{"papr_db":9.8}}]})";

TEST(BenchDiff, BaselineRoundTripIsClean) {
  const JsonValue agg = JsonValue::parse(kAggregate);
  const JsonValue base =
      JsonValue::parse(make_baseline_json(agg, 0.25, 1e-9));
  EXPECT_EQ(base.at("schema").as_string(), "holtwlan-bench-baseline-v1");
  const DiffResult r = diff_against_baseline(agg, base, false);
  EXPECT_TRUE(r.ok()) << [&] {
    std::ostringstream out;
    write_diff_report(out, r);
    return out.str();
  }();
  EXPECT_EQ(r.compared, 3u);  // NaN pins NaN ("no crossing" stays none)
}

TEST(BenchDiff, FailsOnPerturbedMetric) {
  const JsonValue base = JsonValue::parse(
      make_baseline_json(JsonValue::parse(kAggregate), 0.25, 1e-9));
  // gain_db drifts from 10.4 to 14.0: |delta| = 3.6 > 0.25 * 10.4 = 2.6.
  const JsonValue perturbed = JsonValue::parse(
      R"({"schema":"holtwlan-bench-aggregate-v1","reports":[
           {"id":"C2","verdict":"REPRODUCED",
            "metrics":{"gain_db":14.0,"crossing":null}},
           {"id":"C11","verdict":"REPRODUCED",
            "metrics":{"papr_db":9.8}}]})");
  const DiffResult r = diff_against_baseline(perturbed, base, false);
  EXPECT_FALSE(r.ok());  // <- what makes bench_diff exit nonzero
  ASSERT_EQ(r.failures(), 1u);
  bool found = false;
  for (const MetricDiff& row : r.rows) {
    if (row.status == MetricDiff::Status::kDrift) {
      found = true;
      EXPECT_EQ(row.bench, "C2");
      EXPECT_EQ(row.name, "gain_db");
    }
  }
  EXPECT_TRUE(found);
}

TEST(BenchDiff, FailsOnRegressedVerdictMissingBenchAndMissingMetric) {
  const JsonValue base = JsonValue::parse(
      make_baseline_json(JsonValue::parse(kAggregate), 0.25, 1e-9));
  const JsonValue degraded = JsonValue::parse(
      R"({"schema":"holtwlan-bench-aggregate-v1","reports":[
           {"id":"C2","verdict":"MISMATCH","metrics":{"gain_db":10.4}}]})");
  const DiffResult r = diff_against_baseline(degraded, base, false);
  std::size_t verdicts = 0;
  std::size_t missing_bench = 0;
  std::size_t missing_metric = 0;
  for (const MetricDiff& row : r.rows) {
    verdicts += row.status == MetricDiff::Status::kVerdictRegressed;
    missing_bench += row.status == MetricDiff::Status::kMissingBench;
    missing_metric += row.status == MetricDiff::Status::kMissingMetric;
  }
  EXPECT_EQ(verdicts, 1u);        // C2 REPRODUCED -> MISMATCH
  EXPECT_EQ(missing_bench, 1u);   // C11 vanished
  EXPECT_EQ(missing_metric, 1u);  // C2 lost "crossing"
  EXPECT_EQ(r.failures(), 3u);

  // --subset mode forgives the missing bench but nothing else.
  const DiffResult subset = diff_against_baseline(degraded, base, true);
  EXPECT_EQ(subset.failures(), 2u);
}

TEST(BenchDiff, NewMetricsAreReportedButNeverFail) {
  const JsonValue base = JsonValue::parse(
      make_baseline_json(JsonValue::parse(kAggregate), 0.25, 1e-9));
  const JsonValue grown = JsonValue::parse(
      R"({"schema":"holtwlan-bench-aggregate-v1","reports":[
           {"id":"C2","verdict":"REPRODUCED",
            "metrics":{"gain_db":10.4,"crossing":null,"extra":1.0}},
           {"id":"C11","verdict":"REPRODUCED",
            "metrics":{"papr_db":9.8}}]})");
  const DiffResult r = diff_against_baseline(grown, base, false);
  EXPECT_TRUE(r.ok());
  bool saw_new = false;
  for (const MetricDiff& row : r.rows) {
    saw_new |= row.status == MetricDiff::Status::kNew && row.name == "extra";
  }
  EXPECT_TRUE(saw_new);
}

TEST(BenchDiff, DuplicateIdsDisambiguatedByTitle) {
  // The extension benches all report id "EXT"; the title keeps their
  // baseline entries from binding to the same report.
  const JsonValue agg = JsonValue::parse(
      R"({"schema":"holtwlan-bench-aggregate-v1","reports":[
           {"id":"EXT","title":"EXT: rate adaptation",
            "verdict":"REPRODUCED","metrics":{"genie_gap_mbps":2.0}},
           {"id":"EXT","title":"EXT: hidden terminals",
            "verdict":"REPRODUCED","metrics":{"rts_loss":0.01}}]})");
  const JsonValue base =
      JsonValue::parse(make_baseline_json(agg, 0.25, 1e-9));
  const DiffResult r = diff_against_baseline(agg, base, false);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.compared, 2u);  // each entry matched its own report
  for (const MetricDiff& row : r.rows) {
    EXPECT_NE(row.status, MetricDiff::Status::kNew)
        << row.bench << "." << row.name
        << " cross-matched the wrong EXT report";
  }
}

TEST(BenchDiff, PerMetricToleranceOverridesDefault) {
  const JsonValue agg = JsonValue::parse(
      R"({"schema":"holtwlan-bench-aggregate-v1","reports":[
           {"id":"C2","verdict":"REPRODUCED","metrics":{"gain_db":10.5}}]})");
  const JsonValue base = JsonValue::parse(
      R"({"schema":"holtwlan-bench-baseline-v1",
          "default_rel_tol":0.25,"default_abs_tol":1e-9,
          "benches":[{"id":"C2","verdict":"REPRODUCED",
            "metrics":[{"name":"gain_db","value":10.4,"rel_tol":0.001}]}]})");
  // Default 25% would pass; the pinned 0.1% must fail.
  EXPECT_FALSE(diff_against_baseline(agg, base, false).ok());
}

}  // namespace
}  // namespace wlan::obs

// Tests for the Jakes sum-of-sinusoids fader.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "channel/doppler.h"
#include "common/check.h"
#include "common/rng.h"

namespace wlan::channel {
namespace {

TEST(Jakes, UnitMeanPowerAcrossRealizations) {
  Rng rng(1);
  double power = 0.0;
  const int realizations = 400;
  for (int r = 0; r < realizations; ++r) {
    const JakesFader fader(rng, 10.0);
    power += std::norm(fader.at(0.123));
  }
  EXPECT_NEAR(power / realizations, 1.0, 0.1);
}

TEST(Jakes, DeterministicGivenConstruction) {
  Rng rng(2);
  const JakesFader fader(rng, 5.0);
  const Cplx a = fader.at(1.0);
  const Cplx b = fader.at(1.0);
  EXPECT_EQ(a, b);
}

TEST(Jakes, SeriesMatchesPointEvaluation) {
  Rng rng(3);
  const JakesFader fader(rng, 20.0);
  const CVec s = fader.series(0.5, 1e-3, 10);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(s[i], fader.at(0.5 + 1e-3 * static_cast<double>(i)));
  }
}

TEST(Jakes, CorrelatedWithinCoherenceTime) {
  // Samples far closer than Tc must be nearly identical; samples many Tc
  // apart must decorrelate (averaged over realizations).
  Rng rng(4);
  const double fd = 10.0;
  double near_corr = 0.0;
  double far_corr = 0.0;
  double power = 0.0;
  const int realizations = 300;
  for (int r = 0; r < realizations; ++r) {
    const JakesFader fader(rng, fd);
    const Cplx h0 = fader.at(0.0);
    near_corr += (h0 * std::conj(fader.at(0.423 / fd / 50.0))).real();
    far_corr += (h0 * std::conj(fader.at(10.0 / fd))).real();
    power += std::norm(h0);
  }
  EXPECT_GT(near_corr / power, 0.95);
  EXPECT_LT(std::abs(far_corr) / power, 0.2);
}

TEST(Jakes, AutocorrelationFollowsBesselZero) {
  // E[h(t) h*(t+tau)] = J0(2 pi fD tau); the first zero of J0 is at
  // 2 pi fD tau ~ 2.405. Check the empirical correlation crosses near it.
  Rng rng(5);
  const double fd = 10.0;
  const double tau_zero = 2.405 / (2.0 * std::numbers::pi * fd);
  double at_zero = 0.0;
  double at_half = 0.0;
  double power = 0.0;
  const int realizations = 2000;
  for (int r = 0; r < realizations; ++r) {
    const JakesFader fader(rng, fd);
    const Cplx h0 = fader.at(0.0);
    at_zero += (h0 * std::conj(fader.at(tau_zero))).real();
    at_half += (h0 * std::conj(fader.at(tau_zero / 2.0))).real();
    power += std::norm(h0);
  }
  // J0(1.2025) ~ 0.67 at half the first zero; ~0 at the zero itself.
  EXPECT_NEAR(at_half / power, 0.67, 0.12);
  EXPECT_NEAR(at_zero / power, 0.0, 0.1);
}

TEST(Jakes, RayleighEnvelopeStatistics) {
  // P(|h|^2 < x) = 1 - exp(-x) for Rayleigh fading with unit power.
  Rng rng(6);
  int below_median = 0;
  const int realizations = 4000;
  const double median = std::log(2.0);
  for (int r = 0; r < realizations; ++r) {
    const JakesFader fader(rng, 7.0);
    if (std::norm(fader.at(0.37)) < median) ++below_median;
  }
  EXPECT_NEAR(static_cast<double>(below_median) / realizations, 0.5, 0.04);
}

TEST(Jakes, CoherenceTimeHeuristic) {
  Rng rng(7);
  const JakesFader fader(rng, 10.0);
  EXPECT_NEAR(fader.coherence_time_s(), 0.0423, 1e-6);
}

TEST(Jakes, Validation) {
  Rng rng(8);
  EXPECT_THROW(JakesFader(rng, 0.0), ContractError);
  EXPECT_THROW(JakesFader(rng, 10.0, 2), ContractError);
}

}  // namespace
}  // namespace wlan::channel

// Tests for the QAM mapper / LLR demapper.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/check.h"
#include "common/rng.h"
#include "phy/modulation.h"

namespace wlan::phy {
namespace {

const std::array<Modulation, 4> kAllMods = {Modulation::kBpsk, Modulation::kQpsk,
                                            Modulation::kQam16, Modulation::kQam64};

TEST(Modulation, BitsPerSymbol) {
  EXPECT_EQ(bits_per_symbol(Modulation::kBpsk), 1u);
  EXPECT_EQ(bits_per_symbol(Modulation::kQpsk), 2u);
  EXPECT_EQ(bits_per_symbol(Modulation::kQam16), 4u);
  EXPECT_EQ(bits_per_symbol(Modulation::kQam64), 6u);
}

class ModRoundTrip : public ::testing::TestWithParam<Modulation> {};

TEST_P(ModRoundTrip, NoiselessHardDecisionExact) {
  const Modulation mod = GetParam();
  Rng rng(1);
  const std::size_t n_bits = bits_per_symbol(mod) * 500;
  const Bits bits = rng.random_bits(n_bits);
  const CVec symbols = modulate(bits, mod);
  EXPECT_EQ(symbols.size(), 500u);
  EXPECT_EQ(demodulate_hard(symbols, mod), bits);
}

TEST_P(ModRoundTrip, UnitAverageEnergy) {
  const Modulation mod = GetParam();
  Rng rng(2);
  const Bits bits = rng.random_bits(bits_per_symbol(mod) * 20000);
  const CVec symbols = modulate(bits, mod);
  double power = 0.0;
  for (const auto& s : symbols) power += std::norm(s);
  EXPECT_NEAR(power / static_cast<double>(symbols.size()), 1.0, 0.02);
}

TEST_P(ModRoundTrip, LlrSignsMatchBits) {
  const Modulation mod = GetParam();
  Rng rng(3);
  const Bits bits = rng.random_bits(bits_per_symbol(mod) * 200);
  const CVec symbols = modulate(bits, mod);
  const RVec llrs = demodulate_llr(symbols, mod, 0.1);
  ASSERT_EQ(llrs.size(), bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    // Positive LLR = bit 0; noiseless so signs must be decisive.
    EXPECT_EQ(llrs[i] < 0.0 ? 1 : 0, bits[i]) << "bit " << i;
    EXPECT_GT(std::abs(llrs[i]), 0.1);
  }
}

TEST_P(ModRoundTrip, ConstellationIsGrayMapped) {
  // Minimum-distance neighbors must differ in exactly one bit: enumerate
  // all symbol pairs and check the property for every nearest neighbor.
  const Modulation mod = GetParam();
  const std::size_t n_bpsc = bits_per_symbol(mod);
  const std::size_t n_points = std::size_t{1} << n_bpsc;
  std::vector<Bits> labels;
  CVec points;
  for (std::size_t v = 0; v < n_points; ++v) {
    Bits b(n_bpsc);
    for (std::size_t i = 0; i < n_bpsc; ++i) b[i] = (v >> i) & 1u;
    labels.push_back(b);
    points.push_back(modulate(b, mod)[0]);
  }
  // Find the minimum pairwise distance.
  double dmin = 1e300;
  for (std::size_t i = 0; i < n_points; ++i) {
    for (std::size_t j = i + 1; j < n_points; ++j) {
      dmin = std::min(dmin, std::abs(points[i] - points[j]));
    }
  }
  for (std::size_t i = 0; i < n_points; ++i) {
    for (std::size_t j = i + 1; j < n_points; ++j) {
      if (std::abs(points[i] - points[j]) < dmin * 1.01) {
        std::size_t diff = 0;
        for (std::size_t b = 0; b < n_bpsc; ++b) {
          if (labels[i][b] != labels[j][b]) ++diff;
        }
        EXPECT_EQ(diff, 1u) << "non-Gray neighbor pair " << i << "," << j;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModulations, ModRoundTrip,
                         ::testing::ValuesIn(kAllMods));

TEST(Modulation, BpskPointsAreReal) {
  const CVec pts = modulate(Bits{0, 1}, Modulation::kBpsk);
  EXPECT_NEAR(pts[0].real(), -1.0, 1e-14);
  EXPECT_NEAR(pts[0].imag(), 0.0, 1e-14);
  EXPECT_NEAR(pts[1].real(), 1.0, 1e-14);
}

TEST(Modulation, QpskQuadrants) {
  const CVec pts = modulate(Bits{0, 0, 1, 1}, Modulation::kQpsk);
  EXPECT_LT(pts[0].real(), 0.0);
  EXPECT_LT(pts[0].imag(), 0.0);
  EXPECT_GT(pts[1].real(), 0.0);
  EXPECT_GT(pts[1].imag(), 0.0);
}

TEST(Modulation, RejectsRaggedBitCount) {
  EXPECT_THROW(modulate(Bits{1, 0, 1}, Modulation::kQpsk), ContractError);
  EXPECT_THROW(modulate(Bits{1, 0, 1, 0, 1}, Modulation::kQam16), ContractError);
}

TEST(Modulation, LlrScalesInverselyWithNoise) {
  const Bits bits = {0, 0, 0, 0, 1, 1};
  const CVec sym = modulate(bits, Modulation::kQam64);
  const RVec quiet = demodulate_llr(sym, Modulation::kQam64, 0.01);
  const RVec loud = demodulate_llr(sym, Modulation::kQam64, 1.0);
  for (std::size_t i = 0; i < quiet.size(); ++i) {
    EXPECT_NEAR(quiet[i] / loud[i], 100.0, 1.0);
  }
}

TEST(Modulation, PerSymbolNoiseVarianceWeighting) {
  // A symbol with worse CSI must produce proportionally weaker LLRs.
  const Bits bits = {0, 1, 0, 1};
  const CVec sym = modulate(bits, Modulation::kQpsk);
  const RVec nv = {0.1, 10.0};
  const RVec llrs = demodulate_llr(sym, Modulation::kQpsk, nv);
  EXPECT_GT(std::abs(llrs[0]), 10.0 * std::abs(llrs[2]));
}

TEST(Modulation, HardDemodUnderModerateNoise) {
  // QPSK at 10 dB SNR: symbol error rate should be low but nonzero-safe.
  Rng rng(5);
  const Bits bits = rng.random_bits(2 * 5000);
  CVec sym = modulate(bits, Modulation::kQpsk);
  for (auto& s : sym) s += rng.cgaussian(0.1);
  const Bits out = demodulate_hard(sym, Modulation::kQpsk);
  std::size_t errors = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] != out[i]) ++errors;
  }
  // Q(sqrt(10)) ~ 7.8e-4 per bit.
  EXPECT_LT(static_cast<double>(errors) / static_cast<double>(bits.size()), 5e-3);
}

TEST(Modulation, Qam16AmplitudeLevels) {
  // All four amplitude levels +-1/sqrt(10), +-3/sqrt(10) must appear.
  Rng rng(6);
  const Bits bits = rng.random_bits(4 * 1000);
  const CVec sym = modulate(bits, Modulation::kQam16);
  std::map<int, int> level_counts;
  for (const auto& s : sym) {
    level_counts[static_cast<int>(std::round(s.real() * std::sqrt(10.0)))]++;
  }
  EXPECT_EQ(level_counts.size(), 4u);
  for (const auto& [level, count] : level_counts) {
    EXPECT_TRUE(level == -3 || level == -1 || level == 1 || level == 3);
    EXPECT_GT(count, 150);
  }
}

}  // namespace
}  // namespace wlan::phy

// The spatially sharded network engine: planner geometry, shard-vs-
// monolith bitwise equivalence, thread-count-independent merges, and
// the event-bookkeeping fixes that scaling flushed out.
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/abstraction.h"
#include "core/link.h"
#include "net/errormodel.h"
#include "net/netsim.h"
#include "net/shard.h"
#include "obs/metrics.h"
#include "par/montecarlo.h"

namespace wlan {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Deployment {
  std::vector<net::NodeConfig> nodes;
  std::vector<net::Flow> flows;
};

/// The bench_multibss deployment: `bss_grid`^2 APs, `clients` saturated
/// uplink STAs on a ring around each.
Deployment make_grid(std::size_t bss_grid, double spacing_m,
                     std::size_t clients, double radius_m,
                     double origin_x = 0.0) {
  Deployment d;
  for (std::size_t gy = 0; gy < bss_grid; ++gy) {
    for (std::size_t gx = 0; gx < bss_grid; ++gx) {
      const double ax = origin_x + static_cast<double>(gx) * spacing_m;
      const double ay = static_cast<double>(gy) * spacing_m;
      const std::size_t ap = d.nodes.size();
      d.nodes.push_back({{ax, ay}});
      for (std::size_t c = 0; c < clients; ++c) {
        const double angle = 2.0 * M_PI * static_cast<double>(c) /
                             static_cast<double>(clients);
        d.nodes.push_back({{ax + radius_m * std::cos(angle),
                            ay + radius_m * std::sin(angle)}});
        d.flows.push_back({d.nodes.size() - 1, ap});
      }
    }
  }
  return d;
}

/// The 63-node bench_multibss geometry (same physics-driven sizing).
Deployment multibss63(const net::NetworkConfig& cfg) {
  double radius_m = 5.0;
  while (snr_at_distance_db(cfg.pathloss, radius_m * 1.3, 17.0,
                            cfg.bandwidth_hz) > 34.0) {
    radius_m *= 1.3;
  }
  const double noise_dbm =
      -174.0 + 10.0 * std::log10(cfg.bandwidth_hz) + 6.0;
  const double cs_snr_db = -82.0 - noise_dbm;
  double spacing_m = radius_m;
  while (snr_at_distance_db(cfg.pathloss, spacing_m, 17.0, cfg.bandwidth_hz) >
         cs_snr_db) {
    spacing_m *= 1.1;
  }
  return make_grid(3, spacing_m, 6, radius_m);
}

net::ShardOptions monolithic() {
  net::ShardOptions o;
  o.cutoff_margin_db = kInf;
  return o;
}

void expect_flows_bitwise(const net::NetworkResult& a,
                          const net::NetworkResult& b) {
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t f = 0; f < a.flows.size(); ++f) {
    EXPECT_EQ(a.flows[f].delivered, b.flows[f].delivered) << "flow " << f;
    EXPECT_EQ(a.flows[f].attempts, b.flows[f].attempts) << "flow " << f;
    EXPECT_EQ(a.flows[f].retries, b.flows[f].retries) << "flow " << f;
    EXPECT_EQ(a.flows[f].drops, b.flows[f].drops) << "flow " << f;
    EXPECT_EQ(a.flows[f].throughput_mbps, b.flows[f].throughput_mbps)
        << "flow " << f;
    EXPECT_EQ(a.flows[f].mean_delay_s, b.flows[f].mean_delay_s)
        << "flow " << f;
    EXPECT_EQ(a.flows[f].mean_data_rate_mbps, b.flows[f].mean_data_rate_mbps)
        << "flow " << f;
  }
  EXPECT_EQ(a.total_delivered, b.total_delivered);
  EXPECT_EQ(a.aggregate_throughput_mbps, b.aggregate_throughput_mbps);
  EXPECT_EQ(a.data_tx_count, b.data_tx_count);
  EXPECT_EQ(a.data_failures, b.data_failures);
  EXPECT_EQ(a.rts_tx_count, b.rts_tx_count);
  EXPECT_EQ(a.rts_failures, b.rts_failures);
  EXPECT_EQ(a.simultaneous_starts, b.simultaneous_starts);
}

// --- Planner geometry ------------------------------------------------

TEST(ShardPlan, UnboundedMarginKeepsEveryPairInOneShard) {
  net::NetworkConfig cfg;
  const Deployment d = multibss63(cfg);
  const net::ShardPlan plan = net::plan_shards(cfg, d.nodes, monolithic());
  ASSERT_EQ(plan.shards.size(), 1u);
  EXPECT_EQ(plan.shards[0].size(), d.nodes.size());
  EXPECT_EQ(plan.n_edges(), d.nodes.size() * (d.nodes.size() - 1));
  for (std::size_t i = 0; i < d.nodes.size(); ++i) {
    EXPECT_EQ(plan.degree(i), d.nodes.size() - 1);
    EXPECT_EQ(plan.shard_of[i], 0u);
  }
}

TEST(ShardPlan, DistantClustersFormSeparateShards) {
  net::NetworkConfig cfg;
  Deployment d = make_grid(1, 0.0, 2, 10.0);
  const Deployment far = make_grid(1, 0.0, 2, 10.0, 5000.0);
  const std::size_t offset = d.nodes.size();
  d.nodes.insert(d.nodes.end(), far.nodes.begin(), far.nodes.end());
  for (const net::Flow& f : far.flows) {
    d.flows.push_back({f.source + offset, f.destination + offset});
  }
  const net::ShardPlan plan =
      net::plan_shards(cfg, d.nodes, net::ShardOptions{});
  ASSERT_EQ(plan.shards.size(), 2u);
  EXPECT_EQ(plan.shards[0].size(), offset);
  EXPECT_EQ(plan.shards[1].size(), far.nodes.size());
  // Rows are ascending and symmetric; no edge crosses the clusters.
  for (std::size_t i = 0; i < d.nodes.size(); ++i) {
    for (std::size_t e = plan.row_offset[i]; e < plan.row_offset[i + 1];
         ++e) {
      const std::uint32_t j = plan.nbr[e];
      if (e > plan.row_offset[i]) {
        EXPECT_LT(plan.nbr[e - 1], j);
      }
      EXPECT_EQ(plan.shard_of[i], plan.shard_of[j]);
      bool reverse = false;
      for (std::size_t r = plan.row_offset[j]; r < plan.row_offset[j + 1];
           ++r) {
        reverse |= plan.nbr[r] == i;
      }
      EXPECT_TRUE(reverse) << i << "->" << j;
    }
  }
}

TEST(ShardPlan, WiderMarginCouplesMorePairs) {
  net::NetworkConfig cfg;
  const Deployment d = multibss63(cfg);
  net::ShardOptions narrow;
  narrow.cutoff_margin_db = 0.0;
  net::ShardOptions wide;
  wide.cutoff_margin_db = 30.0;
  const net::ShardPlan pn = net::plan_shards(cfg, d.nodes, narrow);
  const net::ShardPlan pw = net::plan_shards(cfg, d.nodes, wide);
  EXPECT_GE(pw.n_edges(), pn.n_edges());
  EXPECT_GT(pw.cutoff_radius_m, pn.cutoff_radius_m);
  EXPECT_LT(pw.cutoff_rx_dbm, pn.cutoff_rx_dbm);
}

// --- Shard vs monolith equivalence ----------------------------------

TEST(ShardEquivalence, Multibss63BitwiseIdenticalToMonolith) {
  net::NetworkConfig cfg;
  cfg.duration_s = 0.2;
  cfg.payload_bytes = 1000;
  cfg.rts_cts = true;
  cfg.error_model.model = net::RxModel::kPerModel;
  cfg.error_model.shadowing_sigma_db = 4.0;
  cfg.error_model.realizations = 8;
  cfg.rate_control = net::RateControlMode::kArf;
  const Deployment d = multibss63(cfg);

  obs::Registry mono_reg;
  cfg.registry = &mono_reg;
  Rng mono_rng(11);
  const auto mono = simulate_network(cfg, d.nodes, d.flows, mono_rng);

  for (const unsigned jobs : {1u, 8u}) {
    obs::Registry shard_reg;
    cfg.registry = &shard_reg;
    net::ShardOptions opt = monolithic();
    opt.jobs = jobs;
    Rng rng(11);
    const auto sharded =
        net::simulate_network_sharded(cfg, d.nodes, d.flows, opt, rng);
    expect_flows_bitwise(mono, sharded);
    EXPECT_EQ(mono_reg.snapshot_json(), shard_reg.snapshot_json());
  }
}

TEST(ShardEquivalence, HiddenTerminalTriangleBitwiseIdentical) {
  const auto setup = net::make_hidden_terminal_setup(80.0);
  net::NetworkConfig cfg;
  cfg.duration_s = 0.5;
  cfg.rts_cts = false;

  obs::Registry mono_reg;
  cfg.registry = &mono_reg;
  Rng mono_rng(7);
  const auto mono = simulate_network(cfg, setup.nodes, setup.flows, mono_rng);

  // At 80 m spacing every pair stays above the default cutoff, so even
  // the bounded plan is a single shard and must reproduce the monolith
  // bitwise (it runs inline on the caller's rng).
  for (const double margin : {kInf, 15.0}) {
    obs::Registry shard_reg;
    cfg.registry = &shard_reg;
    net::ShardOptions opt;
    opt.cutoff_margin_db = margin;
    opt.jobs = 8;
    Rng rng(7);
    const net::ShardPlan plan = net::plan_shards(cfg, setup.nodes, opt);
    ASSERT_EQ(plan.shards.size(), 1u);
    const auto sharded = net::simulate_network_sharded(
        cfg, setup.nodes, setup.flows, opt, rng, &plan);
    expect_flows_bitwise(mono, sharded);
    EXPECT_EQ(mono_reg.snapshot_json(), shard_reg.snapshot_json());
  }
}

/// Two multibss cells 5 km apart: a genuinely multi-shard run.
Deployment two_cells(const net::NetworkConfig& cfg) {
  Deployment d = multibss63(cfg);
  d.nodes.resize(7);  // one BSS: AP + 6 clients
  d.flows.resize(6);
  const std::size_t offset = d.nodes.size();
  Deployment far = d;
  for (net::NodeConfig& n : far.nodes) n.position.x += 5000.0;
  d.nodes.insert(d.nodes.end(), far.nodes.begin(), far.nodes.end());
  for (const net::Flow& f : far.flows) {
    d.flows.push_back({f.source + offset, f.destination + offset});
  }
  return d;
}

TEST(ShardEquivalence, MultiShardRunIsThreadCountInvariant) {
  net::NetworkConfig cfg;
  cfg.duration_s = 0.2;
  cfg.error_model.model = net::RxModel::kPerModel;
  cfg.error_model.shadowing_sigma_db = 4.0;
  cfg.error_model.realizations = 8;
  cfg.lifecycle.enabled = true;
  cfg.airtime = true;
  const Deployment d = two_cells(cfg);

  net::ShardOptions opt;
  {
    const net::ShardPlan plan = net::plan_shards(cfg, d.nodes, opt);
    ASSERT_EQ(plan.shards.size(), 2u);
  }

  obs::Registry reg1;
  cfg.registry = &reg1;
  opt.jobs = 1;
  Rng rng1(3);
  const auto r1 = net::simulate_network_sharded(cfg, d.nodes, d.flows, opt,
                                                rng1);
  obs::Registry reg8;
  cfg.registry = &reg8;
  opt.jobs = 8;
  Rng rng8(3);
  const auto r8 = net::simulate_network_sharded(cfg, d.nodes, d.flows, opt,
                                                rng8);
  expect_flows_bitwise(r1, r8);
  EXPECT_EQ(reg1.snapshot_json(), reg8.snapshot_json());
  EXPECT_EQ(r1.lifecycle.breaches, 0u);
  EXPECT_EQ(r8.lifecycle.breaches, 0u);
}

TEST(ShardEquivalence, ShardZeroMatchesMonolithOfItsSubset) {
  net::NetworkConfig cfg;
  cfg.duration_s = 0.2;
  const Deployment d = two_cells(cfg);
  const std::size_t cell_nodes = 7;
  const std::size_t cell_flows = 6;

  net::ShardOptions opt;
  Rng rng(99);
  const auto sharded =
      net::simulate_network_sharded(cfg, d.nodes, d.flows, opt, rng);

  // Shard 0 ran under Rng(derive_seed(root, 0, 0)) where root is the
  // first draw off the caller's rng; its members are exactly cell 0,
  // whose local indices equal the global ones. A monolithic run of that
  // subset under the same derived rng must agree bitwise.
  Rng replay(99);
  const std::uint64_t root = replay.next_u64();
  Rng shard0_rng(par::derive_seed(root, 0, 0));
  const std::vector<net::NodeConfig> sub_nodes(
      d.nodes.begin(), d.nodes.begin() + cell_nodes);
  const std::vector<net::Flow> sub_flows(d.flows.begin(),
                                         d.flows.begin() + cell_flows);
  const auto mono = simulate_network(cfg, sub_nodes, sub_flows, shard0_rng);
  for (std::size_t f = 0; f < cell_flows; ++f) {
    EXPECT_EQ(sharded.flows[f].delivered, mono.flows[f].delivered);
    EXPECT_EQ(sharded.flows[f].attempts, mono.flows[f].attempts);
    EXPECT_EQ(sharded.flows[f].throughput_mbps, mono.flows[f].throughput_mbps);
  }
}

TEST(ShardEquivalence, CrossShardFlowThrows) {
  net::NetworkConfig cfg;
  Deployment d = two_cells(cfg);
  d.flows.push_back({0, 7});  // spans the 5 km gap
  net::ShardOptions opt;
  Rng rng(1);
  EXPECT_THROW(
      net::simulate_network_sharded(cfg, d.nodes, d.flows, opt, rng),
      ContractError);
}

TEST(ShardEquivalence, CrossShardFlowErrorNamesTheFlowAndTheRemedy) {
  net::NetworkConfig cfg;
  Deployment d = two_cells(cfg);
  d.flows.push_back({0, 7});  // flow 12: spans the 5 km gap
  net::ShardOptions opt;
  Rng rng(1);
  try {
    net::simulate_network_sharded(cfg, d.nodes, d.flows, opt, rng);
    FAIL() << "expected ContractError";
  } catch (const ContractError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("flow 12"), std::string::npos) << msg;
    EXPECT_NE(msg.find("0 -> 7"), std::string::npos) << msg;
    EXPECT_NE(msg.find("ShardOptions::border"), std::string::npos) << msg;
  }
}

TEST(ShardedBooks, MergedLedgersLandInGlobalSlots) {
  net::NetworkConfig cfg;
  cfg.duration_s = 0.2;
  cfg.lifecycle.enabled = true;
  cfg.airtime = true;
  const Deployment d = two_cells(cfg);
  obs::Registry reg;
  cfg.registry = &reg;
  net::ShardOptions opt;
  Rng rng(5);
  const auto r = net::simulate_network_sharded(cfg, d.nodes, d.flows, opt,
                                               rng);
  // Global sizing and conservation across both cells.
  ASSERT_EQ(r.flows.size(), d.flows.size());
  ASSERT_EQ(r.airtime.nodes.size(), d.nodes.size());
  ASSERT_EQ(r.airtime.flows.size(), d.flows.size());
  ASSERT_EQ(r.lifecycle.ledger.flows.size(), d.flows.size());
  std::uint64_t delivered = 0;
  for (const auto& f : r.flows) delivered += f.delivered;
  EXPECT_EQ(delivered, r.total_delivered);
  EXPECT_GT(delivered, 0u);
  for (std::size_t f = 0; f < d.flows.size(); ++f) {
    EXPECT_EQ(r.airtime.flows[f].delivered, r.flows[f].delivered);
    EXPECT_EQ(r.lifecycle.ledger.flows[f].delivered, r.flows[f].delivered);
  }
  // The merged channel-time partition closes over both shards' channels.
  EXPECT_NEAR(r.airtime.idle_s + r.airtime.busy_s + r.airtime.collision_s,
              r.airtime.duration_s, 1e-9 * r.airtime.duration_s);
  // Per-flow instruments carry global ids: flows 6.. are the far cell.
  EXPECT_NE(reg.find_counter("net.delivered", {{"flow", "7"}}), nullptr);
  EXPECT_NE(reg.find_counter("lifecycle.delivered", {{"flow", "7"}}),
            nullptr);
  EXPECT_NE(reg.find_counter("airtime.flow_delivered", {{"flow", "7"}}),
            nullptr);
  EXPECT_NE(reg.find_counter("airtime.node_tx_frames", {{"node", "13"}}),
            nullptr);
  EXPECT_EQ(r.lifecycle.breaches, 0u);
}

// --- Event-bookkeeping regressions ----------------------------------

// Long-churn soak: hours of simulated saturated contention with RTS/CTS
// exercises millions of interference add/subtract pairs. The engine
// asserts (check) that no running sum ever goes negative beyond FP
// rounding, so drift or double-subtraction aborts the run.
TEST(Bookkeeping, LongChurnKeepsInterferenceSumsNonNegative) {
  // 80 m keeps the senders below each other's CS threshold (hidden)
  // while the 40 m sender->receiver hop still clears the SINR threshold.
  const auto setup = net::make_hidden_terminal_setup(80.0);
  net::NetworkConfig cfg;
  cfg.duration_s = 20.0;
  cfg.rts_cts = true;  // CTS/ACK cross-traffic maximizes add/subtract churn
  Rng rng(17);
  const auto r =
      simulate_network(cfg, setup.nodes, setup.flows, rng);
  EXPECT_GT(r.total_delivered, 0u);
  EXPECT_GT(r.data_failures + r.rts_failures, 0u);  // real contention ran
}

TEST(Bookkeeping, ManyOverlappingTransmissionsTearDownCleanly) {
  // Four isolated BSS clusters in one shard-free monolithic run keep
  // several transmissions in flight at once, exercising the slot arena's
  // id-checked teardown (stale handles would trip "transmission
  // bookkeeping lost").
  net::NetworkConfig cfg;
  cfg.duration_s = 1.0;
  Deployment d;
  for (std::size_t c = 0; c < 4; ++c) {
    const Deployment cell = make_grid(1, 0.0, 3, 10.0, 5000.0 * c);
    const std::size_t offset = d.nodes.size();
    d.nodes.insert(d.nodes.end(), cell.nodes.begin(), cell.nodes.end());
    for (const net::Flow& f : cell.flows) {
      d.flows.push_back({f.source + offset, f.destination + offset});
    }
  }
  Rng rng(23);
  const auto r = simulate_network(cfg, d.nodes, d.flows, rng);
  EXPECT_GT(r.total_delivered, 0u);
  for (const auto& f : r.flows) EXPECT_GT(f.delivered, 0u);
}

// --- Batched EESM ----------------------------------------------------

TEST(EesmGrid, MatchesScalarEvaluationAcrossTheTable) {
  Rng rng(31);
  for (const double beta : {0.9, 1.5, 4.0, 11.0}) {
    RVec gains;
    for (std::size_t k = 0; k < 48; ++k) {
      gains.push_back(rng.gaussian(0.0, 6.0));
    }
    RVec means;
    for (double m = -15.0; m <= 50.0; m += 0.5) means.push_back(m);
    RVec grid(means.size());
    eesm_effective_snr_grid_db(gains, beta, means, grid);
    for (std::size_t i = 0; i < means.size(); ++i) {
      RVec snrs;
      for (const double g : gains) snrs.push_back(means[i] + g);
      EXPECT_NEAR(grid[i], eesm_effective_snr_db(snrs, beta), 1e-6)
          << "beta " << beta << " mean " << means[i];
    }
  }
}

TEST(EesmGrid, PerBatchMatchesScalarLookups) {
  net::ErrorModelConfig cfg;
  cfg.model = net::RxModel::kPerModel;
  cfg.realizations = 8;
  Rng rng(41);
  const net::LinkPerModel model(mac::PhyGeneration::kOfdm, 24.0, 1000, cfg,
                                rng);
  std::vector<double> sinr;
  std::vector<std::uint32_t> real;
  Rng draw(42);
  for (std::size_t i = 0; i < 256; ++i) {
    sinr.push_back(-20.0 + 70.0 * draw.uniform());
    real.push_back(
        static_cast<std::uint32_t>(draw.uniform_int(model.realizations())));
  }
  std::vector<double> batch(sinr.size());
  model.per_batch(sinr, real, batch);
  for (std::size_t i = 0; i < sinr.size(); ++i) {
    EXPECT_EQ(batch[i], model.per(sinr[i], real[i])) << i;
  }
}

}  // namespace
}  // namespace wlan

// Tests for the EESM link abstraction.
#include <gtest/gtest.h>

#include <algorithm>

#include "channel/awgn.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/abstraction.h"
#include "core/link.h"

namespace wlan {
namespace {

TEST(Eesm, FlatChannelIsIdentity) {
  const RVec snrs(48, 14.0);
  for (const double beta : {1.5, 7.0, 22.0}) {
    EXPECT_NEAR(eesm_effective_snr_db(snrs, beta), 14.0, 1e-9);
  }
}

TEST(Eesm, EffectiveSnrBelowMeanForSelectiveChannels) {
  // Jensen: the exponential average penalizes dips more than peaks help.
  RVec snrs;
  for (int i = 0; i < 24; ++i) {
    snrs.push_back(10.0);
    snrs.push_back(20.0);
  }
  const double eff = eesm_effective_snr_db(snrs, 2.5);
  EXPECT_LT(eff, 15.0);
  EXPECT_GT(eff, 10.0);
}

TEST(Eesm, LargerBetaIsMoreForgiving) {
  RVec snrs;
  for (int i = 0; i < 24; ++i) {
    snrs.push_back(5.0);
    snrs.push_back(25.0);
  }
  EXPECT_LT(eesm_effective_snr_db(snrs, 1.5), eesm_effective_snr_db(snrs, 22.0));
}

TEST(Eesm, DominatedByWorstToneAtSmallBeta) {
  RVec snrs(47, 30.0);
  snrs.push_back(3.0);
  const double eff = eesm_effective_snr_db(snrs, 0.5);
  // One deep notch pins the effective SNR far below the mean.
  EXPECT_LT(eff, 25.0);
}

TEST(Eesm, BetaGrowsWithConstellation) {
  EXPECT_LT(eesm_beta(phy::OfdmMcs::k6Mbps), eesm_beta(phy::OfdmMcs::k24Mbps));
  EXPECT_LT(eesm_beta(phy::OfdmMcs::k24Mbps), eesm_beta(phy::OfdmMcs::k54Mbps));
}

TEST(Eesm, Validation) {
  EXPECT_THROW(eesm_effective_snr_db({}, 1.0), ContractError);
  const RVec snrs(4, 10.0);
  EXPECT_THROW(eesm_effective_snr_db(snrs, 0.0), ContractError);
}

TEST(AwgnPerModel, MatchesMeasuredWaterfallShape) {
  // The logistic reference must agree with the waveform simulation at the
  // three SNRs per MCS where we checked it: deep failure, midpoint-ish,
  // and clean. Spot check 24 Mbps.
  EXPECT_GT(ofdm_awgn_per(phy::OfdmMcs::k24Mbps, 5.0), 0.95);
  EXPECT_LT(ofdm_awgn_per(phy::OfdmMcs::k24Mbps, 15.0), 0.05);
  const double mid = ofdm_awgn_per(phy::OfdmMcs::k24Mbps, 9.2);
  EXPECT_NEAR(mid, 0.5, 0.02);
}

TEST(PredictPer, FlatUnitChannelMatchesAwgnCurve) {
  channel::Tdl tdl;
  tdl.taps = {Cplx{1.0, 0.0}};
  for (const double snr : {5.0, 10.0, 20.0}) {
    EXPECT_NEAR(predict_ofdm_per(phy::OfdmMcs::k24Mbps, tdl, snr),
                ofdm_awgn_per(phy::OfdmMcs::k24Mbps, snr), 1e-9);
  }
}

TEST(PredictPer, MonotoneInSnr) {
  Rng rng(1);
  const channel::Tdl tdl =
      channel::make_tdl(rng, channel::DelayProfile::kOffice, 20e6);
  double prev = 1.0;
  for (double snr = 0.0; snr <= 30.0; snr += 2.0) {
    const double per = predict_ofdm_per(phy::OfdmMcs::k36Mbps, tdl, snr);
    EXPECT_LE(per, prev + 1e-12);
    prev = per;
  }
}

TEST(PredictPer, TracksFullSimulationAcrossRealizations) {
  // The abstraction's purpose: realizations the predictor calls bad must
  // actually fail more often in the waveform simulation. Compare mean
  // predicted PER with simulated PER over many TDL draws near the
  // waterfall.
  Rng rng(2);
  const phy::OfdmMcs mcs = phy::OfdmMcs::k24Mbps;
  const double snr = 13.0;
  double predicted = 0.0;
  int simulated_errors = 0;
  int packets = 0;
  for (int r = 0; r < 40; ++r) {
    Rng draw = rng.fork();
    const channel::Tdl tdl =
        channel::make_tdl(draw, channel::DelayProfile::kOffice, 20e6);
    predicted += predict_ofdm_per(mcs, tdl, snr);
    // Simulate a few packets over this exact realization by reusing the
    // fixed-channel path: TX, convolve, AWGN.
    const phy::OfdmPhy phy(mcs);
    for (int p = 0; p < 5; ++p) {
      const Bytes psdu = draw.random_bytes(500);
      CVec wave = phy.transmit(psdu);
      const double power = 52.0 / 4096.0;  // per-sample mean of the body
      CVec rx = tdl.apply(wave);
      const double nv = power / db_to_lin(snr);
      channel::add_awgn(rx, draw, nv);
      rx.resize(wave.size());
      if (phy.receive(rx, psdu.size(), nv) != psdu) ++simulated_errors;
      ++packets;
    }
  }
  predicted /= 40.0;
  const double simulated =
      static_cast<double>(simulated_errors) / static_cast<double>(packets);
  // Coarse agreement is the requirement (the published EESM calibrations
  // claim ~0.5 dB): both should sit in the same PER decade.
  EXPECT_NEAR(predicted, simulated, 0.25);
}

}  // namespace
}  // namespace wlan

// Tests for the EESM link abstraction.
#include <gtest/gtest.h>

#include <algorithm>

#include "channel/awgn.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/abstraction.h"
#include "core/link.h"

namespace wlan {
namespace {

TEST(Eesm, FlatChannelIsIdentity) {
  const RVec snrs(48, 14.0);
  for (const double beta : {1.5, 7.0, 22.0}) {
    EXPECT_NEAR(eesm_effective_snr_db(snrs, beta), 14.0, 1e-9);
  }
}

TEST(Eesm, EffectiveSnrBelowMeanForSelectiveChannels) {
  // Jensen: the exponential average penalizes dips more than peaks help.
  RVec snrs;
  for (int i = 0; i < 24; ++i) {
    snrs.push_back(10.0);
    snrs.push_back(20.0);
  }
  const double eff = eesm_effective_snr_db(snrs, 2.5);
  EXPECT_LT(eff, 15.0);
  EXPECT_GT(eff, 10.0);
}

TEST(Eesm, LargerBetaIsMoreForgiving) {
  RVec snrs;
  for (int i = 0; i < 24; ++i) {
    snrs.push_back(5.0);
    snrs.push_back(25.0);
  }
  EXPECT_LT(eesm_effective_snr_db(snrs, 1.5), eesm_effective_snr_db(snrs, 22.0));
}

TEST(Eesm, DominatedByWorstToneAtSmallBeta) {
  RVec snrs(47, 30.0);
  snrs.push_back(3.0);
  const double eff = eesm_effective_snr_db(snrs, 0.5);
  // One deep notch pins the effective SNR far below the mean.
  EXPECT_LT(eff, 25.0);
}

TEST(Eesm, BetaGrowsWithConstellation) {
  EXPECT_LT(eesm_beta(phy::OfdmMcs::k6Mbps), eesm_beta(phy::OfdmMcs::k24Mbps));
  EXPECT_LT(eesm_beta(phy::OfdmMcs::k24Mbps), eesm_beta(phy::OfdmMcs::k54Mbps));
}

TEST(Eesm, Validation) {
  EXPECT_THROW(eesm_effective_snr_db({}, 1.0), ContractError);
  const RVec snrs(4, 10.0);
  EXPECT_THROW(eesm_effective_snr_db(snrs, 0.0), ContractError);
}

TEST(Eesm, HighSnrStaysFinite) {
  // The naive exponential average underflows to 0 already at ~31 dB tone
  // SNRs for beta = 1.5 (exp(-1259) == 0), turning -beta*ln(0) into +inf
  // or NaN downstream. The log-sum-exp form must stay finite and exact.
  for (const double snr : {35.0, 60.0, 100.0, 300.0}) {
    const RVec flat(48, snr);
    const double eff = eesm_effective_snr_db(flat, 1.5);
    EXPECT_TRUE(std::isfinite(eff));
    EXPECT_NEAR(eff, snr, 1e-9);
  }
  // Mixed huge SNRs: still finite, still pinned near the worst tone.
  RVec mixed(47, 250.0);
  mixed.push_back(40.0);
  const double eff = eesm_effective_snr_db(mixed, 1.5);
  EXPECT_TRUE(std::isfinite(eff));
  EXPECT_GT(eff, 40.0 - 1e-6);
  EXPECT_LT(eff, 60.0);
}

TEST(ScalePerToLength, IdentityAtReferenceLength) {
  for (const double p : {0.0, 1e-9, 0.3, 0.999, 1.0}) {
    EXPECT_EQ(scale_per_to_length(p, kPerRefPsduBytes), p);
  }
}

TEST(ScalePerToLength, MatchesClosedForm) {
  // 1 - (1 - p)^(L / L_ref), checked against direct evaluation where the
  // direct form is numerically safe.
  EXPECT_NEAR(scale_per_to_length(0.2, 1000, 500),
              1.0 - 0.8 * 0.8, 1e-12);
  EXPECT_NEAR(scale_per_to_length(0.36, 250, 500), 0.2, 1e-12);
  // Tiny reference PERs scale ~linearly (where (1-p)^r would lose all
  // precision in float math done naively).
  EXPECT_NEAR(scale_per_to_length(1e-12, 1500, 500), 3e-12, 1e-14);
}

TEST(ScalePerToLength, MonotoneInLengthAndBounded) {
  double prev = 0.0;
  for (const std::size_t bytes : {50, 200, 500, 1000, 1500, 4000}) {
    const double p = scale_per_to_length(0.1, bytes);
    EXPECT_GE(p, prev);
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
    prev = p;
  }
  EXPECT_EQ(scale_per_to_length(1.0, 42), 1.0);
  EXPECT_EQ(scale_per_to_length(0.0, 4000), 0.0);
  EXPECT_THROW(scale_per_to_length(0.5, 0), ContractError);
}

TEST(AwgnPerModel, LongerFramesFailMoreOften) {
  for (const double snr : {8.0, 9.2, 10.5}) {
    const double short_per = ofdm_awgn_per(phy::OfdmMcs::k24Mbps, snr, 100);
    const double ref_per = ofdm_awgn_per(phy::OfdmMcs::k24Mbps, snr);
    const double long_per = ofdm_awgn_per(phy::OfdmMcs::k24Mbps, snr, 1500);
    EXPECT_LT(short_per, ref_per);
    EXPECT_LT(ref_per, long_per);
  }
}

TEST(AwgnPerModel, MatchesMeasuredWaterfallShape) {
  // The logistic reference must agree with the waveform simulation at the
  // three SNRs per MCS where we checked it: deep failure, midpoint-ish,
  // and clean. Spot check 24 Mbps.
  EXPECT_GT(ofdm_awgn_per(phy::OfdmMcs::k24Mbps, 5.0), 0.95);
  EXPECT_LT(ofdm_awgn_per(phy::OfdmMcs::k24Mbps, 15.0), 0.05);
  const double mid = ofdm_awgn_per(phy::OfdmMcs::k24Mbps, 9.2);
  EXPECT_NEAR(mid, 0.5, 0.02);
}

TEST(AwgnPerModel, DsssCckCurvesOrderedByRate) {
  // Faster modulations need more SNR: at a fixed SNR the PER ranking
  // follows the rate ladder, and each curve crosses 0.5 at its midpoint.
  for (const double snr : {0.0, 3.0, 6.0}) {
    EXPECT_LE(dsss_awgn_per(DsssCckRate::k1Mbps, snr),
              dsss_awgn_per(DsssCckRate::k2Mbps, snr) + 1e-12);
    EXPECT_LE(dsss_awgn_per(DsssCckRate::k2Mbps, snr),
              dsss_awgn_per(DsssCckRate::k5_5Mbps, snr) + 1e-12);
    EXPECT_LE(dsss_awgn_per(DsssCckRate::k5_5Mbps, snr),
              dsss_awgn_per(DsssCckRate::k11Mbps, snr) + 1e-12);
  }
  EXPECT_NEAR(dsss_awgn_per(DsssCckRate::k1Mbps, -1.5), 0.5, 0.02);
  EXPECT_NEAR(dsss_awgn_per(DsssCckRate::k11Mbps, 7.3), 0.5, 0.02);
  EXPECT_GT(dsss_awgn_per(DsssCckRate::k11Mbps, 1.0), 0.95);
  EXPECT_LT(dsss_awgn_per(DsssCckRate::k1Mbps, 6.0), 0.05);
}

TEST(AwgnPerModel, HtCurvesOrderedByMcs) {
  for (unsigned mcs = 1; mcs < 8; ++mcs) {
    for (const double snr : {2.0, 8.0, 14.0}) {
      EXPECT_LE(ht_awgn_per(mcs - 1, snr), ht_awgn_per(mcs, snr) + 1e-12);
    }
  }
  EXPECT_NEAR(ht_awgn_per(4, 11.4), 0.5, 0.02);
  EXPECT_THROW(ht_awgn_per(8, 10.0), ContractError);
}

TEST(PerTable, MatchesSampledFunctionWithinInterpolation) {
  const auto curve = [](double snr) {
    return ofdm_awgn_per(phy::OfdmMcs::k24Mbps, snr);
  };
  const PerTable table(-5.0, 30.0, 0.25, curve);
  EXPECT_FALSE(table.empty());
  // On-grid points are exact; off-grid within the curvature error of a
  // 0.25 dB linear interpolation.
  EXPECT_EQ(table.lookup(9.25), curve(9.25));
  for (double snr = -4.9; snr < 29.9; snr += 0.137) {
    EXPECT_NEAR(table.lookup(snr), curve(snr), 2e-3);
  }
}

TEST(PerTable, ClampsOutsideGrid) {
  const PerTable table(0.0, 20.0, 0.5, [](double snr) {
    return ofdm_awgn_per(phy::OfdmMcs::k54Mbps, snr);
  });
  EXPECT_EQ(table.lookup(-40.0), table.lookup(0.0));
  EXPECT_EQ(table.lookup(90.0), table.lookup(20.0));
  EXPECT_THROW(PerTable().lookup(5.0), ContractError);
  EXPECT_THROW(PerTable(0.0, -1.0, 0.5, [](double) { return 0.0; }),
               ContractError);
}

TEST(PredictPer, FlatUnitChannelMatchesAwgnCurve) {
  channel::Tdl tdl;
  tdl.taps = {Cplx{1.0, 0.0}};
  for (const double snr : {5.0, 10.0, 20.0}) {
    EXPECT_NEAR(predict_ofdm_per(phy::OfdmMcs::k24Mbps, tdl, snr),
                ofdm_awgn_per(phy::OfdmMcs::k24Mbps, snr), 1e-9);
  }
}

TEST(PredictPer, MonotoneInSnr) {
  Rng rng(1);
  const channel::Tdl tdl =
      channel::make_tdl(rng, channel::DelayProfile::kOffice, 20e6);
  double prev = 1.0;
  for (double snr = 0.0; snr <= 30.0; snr += 2.0) {
    const double per = predict_ofdm_per(phy::OfdmMcs::k36Mbps, tdl, snr);
    EXPECT_LE(per, prev + 1e-12);
    prev = per;
  }
}

TEST(PredictPer, TracksFullSimulationAcrossRealizations) {
  // The abstraction's purpose: realizations the predictor calls bad must
  // actually fail more often in the waveform simulation. Compare mean
  // predicted PER with simulated PER over many TDL draws near the
  // waterfall.
  Rng rng(2);
  const phy::OfdmMcs mcs = phy::OfdmMcs::k24Mbps;
  const double snr = 13.0;
  double predicted = 0.0;
  int simulated_errors = 0;
  int packets = 0;
  for (int r = 0; r < 40; ++r) {
    Rng draw = rng.fork();
    const channel::Tdl tdl =
        channel::make_tdl(draw, channel::DelayProfile::kOffice, 20e6);
    predicted += predict_ofdm_per(mcs, tdl, snr);
    // Simulate a few packets over this exact realization by reusing the
    // fixed-channel path: TX, convolve, AWGN.
    const phy::OfdmPhy phy(mcs);
    for (int p = 0; p < 5; ++p) {
      const Bytes psdu = draw.random_bytes(500);
      CVec wave = phy.transmit(psdu);
      const double power = 52.0 / 4096.0;  // per-sample mean of the body
      CVec rx = tdl.apply(wave);
      const double nv = power / db_to_lin(snr);
      channel::add_awgn(rx, draw, nv);
      rx.resize(wave.size());
      if (phy.receive(rx, psdu.size(), nv) != psdu) ++simulated_errors;
      ++packets;
    }
  }
  predicted /= 40.0;
  const double simulated =
      static_cast<double>(simulated_errors) / static_cast<double>(packets);
  // Coarse agreement is the requirement (the published EESM calibrations
  // claim ~0.5 dB): both should sit in the same PER decade.
  EXPECT_NEAR(predicted, simulated, 0.25);
}

TEST(PredictPer, ToleranceSuiteAcrossAllMcsAndProfiles) {
  // Abstraction-vs-waveform validation across the whole OFDM ladder and
  // two TGn-style delay profiles: the realization-averaged predicted PER
  // must agree with the measured waveform PER (fresh TDL per packet) in
  // the fading-smeared waterfall region. Mid-waterfall AWGN SNR plus a
  // fading margin puts each point where both sides have signal.
  // Tolerance: the calibrated model's worst-case bias is ~0.13 of PER
  // (bench_abstraction, MCS0 residential) and both sides of the
  // comparison are sample means of a bimodal per-channel PER, so 0.22
  // leaves ~2 sigma of sampling headroom without admitting a broken
  // mapping (mid-waterfall PER moves ~0.15 per dB).
  constexpr std::array<double, 8> kAwgnMid = {1.2,  3.1,  3.1,  6.8,
                                              9.2, 12.9, 17.0, 18.6};
  constexpr std::size_t kPackets = 200;
  constexpr std::size_t kRealizations = 300;
  Rng rng(7);
  for (const channel::DelayProfile profile :
       {channel::DelayProfile::kResidential, channel::DelayProfile::kOffice}) {
    for (std::size_t m = 0; m < 8; ++m) {
      const auto mcs = static_cast<phy::OfdmMcs>(m);
      const double snr = kAwgnMid[m] + 4.0;
      double predicted = 0.0;
      for (std::size_t r = 0; r < kRealizations; ++r) {
        const channel::Tdl tdl = channel::make_tdl(rng, profile, 20e6);
        predicted += predict_ofdm_per(mcs, tdl, snr);
      }
      predicted /= static_cast<double>(kRealizations);
      Rng link_rng(1000 + m);
      const LinkResult measured =
          run_ofdm_link(mcs, kPerRefPsduBytes, kPackets, snr, link_rng,
                        ChannelSpec::tdl(profile));
      EXPECT_NEAR(predicted, measured.per(), 0.22)
          << "mcs=" << m << " profile=" << static_cast<int>(profile)
          << " snr=" << snr;
    }
  }
}

}  // namespace
}  // namespace wlan

// Tests for the frame-lifecycle layer (obs/analyze/lifecycle.h):
// FrameLedger delay attribution, TimeSeriesSampler windows, the
// InvariantAuditor's conservation checks and flight recorder, ledger
// vs. netsim-counter reconciliation, and bitwise shard-merge identity
// across --jobs settings.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "net/netsim.h"
#include "obs/analyze/lifecycle.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace wlan::obs {
namespace {

TraceEvent ev(double t, EventType type, std::int32_t node,
              std::int32_t flow = -1, const char* detail = "",
              double value = 0.0) {
  TraceEvent e;
  e.time_s = t;
  e.type = type;
  e.node = node;
  e.flow = flow;
  e.value = value;
  e.detail = detail;
  return e;
}

// ---------------------------------------------------------------------------
// FrameLedger
// ---------------------------------------------------------------------------

TEST(FrameLedger, ComponentsTileTheEndToEndDelayExactly) {
  Registry reg;
  FrameLedger::Config cfg;
  cfg.n_flows = 1;
  cfg.registry = &reg;
  FrameLedger ledger(cfg);

  // Frame A arrives at 0, frame B at 1 ms; A needs two attempts.
  ledger.record(ev(0.0, EventType::kArrival, 0, 0));
  ledger.record(ev(0.001, EventType::kArrival, 0, 0));
  ledger.record(ev(0.002, EventType::kTxStart, 0, 0, "DATA"));
  ledger.record(ev(0.003, EventType::kTxEnd, 0, 0, "DATA"));
  ledger.record(ev(0.004, EventType::kBackoffStart, 0, 0));  // attempt failed
  ledger.record(ev(0.006, EventType::kTxStart, 0, 0, "DATA"));
  ledger.record(ev(0.007, EventType::kTxEnd, 0, 0, "DATA"));
  ledger.record(ev(0.0075, EventType::kStateChange, 0, 0, "DELIVERED"));
  // Frame B: one clean attempt.
  ledger.record(ev(0.008, EventType::kTxStart, 0, 0, "DATA"));
  ledger.record(ev(0.009, EventType::kTxEnd, 0, 0, "DATA"));
  ledger.record(ev(0.0095, EventType::kStateChange, 0, 0, "DELIVERED"));

  const LifecycleReport& rep = ledger.finalize(0.01);
  ASSERT_EQ(rep.flows.size(), 1u);
  const FlowLifecycle& f = rep.flows[0];
  EXPECT_EQ(f.arrivals, 2u);
  EXPECT_EQ(f.delivered, 2u);
  EXPECT_EQ(f.dropped, 0u);
  EXPECT_EQ(f.in_flight, 0u);
  EXPECT_EQ(f.tx_attempts, 3u);
  EXPECT_EQ(f.failed_attempts, 1u);

  // Frame A: arrival 0 -> delivery 0.0075; frame B: 0.001 -> 0.0095.
  // The components tile both journeys, so their sum is the end-to-end
  // delay (up to segment-summation rounding).
  constexpr double kUlp = 1e-15;
  const double total_delay = (0.0075 - 0.0) + (0.0095 - 0.001);
  EXPECT_NEAR(f.total.total_s(), total_delay, kUlp);
  // A was served immediately (queueing 0); B waited from its arrival at
  // 0.001 until A finished at 0.0075.
  EXPECT_DOUBLE_EQ(f.total.queueing_s, 0.0075 - 0.001);
  // A's failed attempt spans its TX_START (0.002) to the backoff restart
  // (0.004): airtime + post-TX wait both count as retry time.
  EXPECT_NEAR(f.total.retry_s, 0.004 - 0.002, kUlp);
  // Successful exchanges: A 0.006->0.0075, B 0.008->0.0095.
  EXPECT_NEAR(f.total.airtime_s, 0.0015 + 0.0015, kUlp);
  // Contention: A [0, 0.002] and [0.004, 0.006]; B [0.0075, 0.008].
  EXPECT_NEAR(f.total.contention_s, 0.002 + 0.002 + 0.0005, kUlp);

  // The registry histograms saw both deliveries.
  const Histogram* h = reg.find_histogram("lifecycle.delay_s");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 2u);
  EXPECT_NEAR(h->sum(), total_delay, kUlp);
  const Histogram* hq = reg.find_histogram(
      "lifecycle.component_s", {{"component", "queueing"}, {"flow", "0"}});
  ASSERT_NE(hq, nullptr);
  EXPECT_EQ(hq->count(), 2u);
  EXPECT_DOUBLE_EQ(hq->sum(), f.total.queueing_s);
}

TEST(FrameLedger, SaturatedFlowSynthesizesArrivalsAndTracksInFlight) {
  Registry reg;
  FrameLedger::Config cfg;
  cfg.n_flows = 1;
  cfg.registry = &reg;
  FrameLedger ledger(cfg);

  // No kArrival ever: the first BACKOFF_START opens the first journey.
  ledger.record(ev(0.0, EventType::kBackoffStart, 0, 0));
  ledger.record(ev(0.001, EventType::kTxStart, 0, 0, "DATA"));
  ledger.record(ev(0.002, EventType::kStateChange, 0, 0, "DELIVERED"));
  // Delivery immediately opens the next head-of-line journey.
  ledger.record(ev(0.003, EventType::kTxStart, 0, 0, "DATA"));
  ledger.record(ev(0.004, EventType::kBackoffStart, 0, 0));
  ledger.record(ev(0.005, EventType::kDrop, 0, 0));

  const LifecycleReport& rep = ledger.finalize(0.006);
  const FlowLifecycle& f = rep.flows[0];
  // Three journeys opened: delivered, dropped, and the one still open.
  EXPECT_EQ(f.arrivals, 3u);
  EXPECT_EQ(f.delivered, 1u);
  EXPECT_EQ(f.dropped, 1u);
  EXPECT_EQ(f.in_flight, 1u);
  EXPECT_EQ(f.arrivals, f.delivered + f.dropped + f.in_flight);
}

// ---------------------------------------------------------------------------
// TimeSeriesSampler
// ---------------------------------------------------------------------------

TEST(TimeSeriesSampler, WindowsCoverTheRunAndCountDeliveries) {
  TimeSeriesSampler::Config cfg;
  cfg.n_flows = 1;
  cfg.window_s = 0.01;
  cfg.payload_bits = 8000.0;
  TimeSeriesSampler sampler(cfg);

  sampler.record(ev(0.001, EventType::kArrival, 0, 0));
  sampler.record(ev(0.002, EventType::kTxStart, 0, 0));
  sampler.record(ev(0.005, EventType::kStateChange, 0, 0, "DELIVERED"));
  sampler.record(ev(0.012, EventType::kArrival, 0, 0));
  sampler.record(ev(0.013, EventType::kTxStart, 0, 0));
  sampler.record(ev(0.014, EventType::kCollision, 0, 0));

  const LifecycleSeries& s = sampler.finalize(0.05);
  ASSERT_EQ(s.t_s.size(), 5u);
  // Window 0: one delivery of 8000 bits over 10 ms = 0.8 Mbps.
  EXPECT_DOUBLE_EQ(s.goodput_mbps[0], 0.8);
  EXPECT_DOUBLE_EQ(s.goodput_mbps[1], 0.0);
  // Window 1: one TX start, one collision.
  EXPECT_DOUBLE_EQ(s.collision_rate[1], 1.0);
  // The window-1 arrival is still outstanding at every later window end.
  EXPECT_DOUBLE_EQ(s.in_flight[0], 0.0);
  EXPECT_DOUBLE_EQ(s.in_flight[4], 1.0);
}

// ---------------------------------------------------------------------------
// InvariantAuditor
// ---------------------------------------------------------------------------

TEST(InvariantAuditor, CleanStreamHasNoBreaches) {
  InvariantAuditor::Config cfg;
  cfg.n_nodes = 2;
  cfg.n_flows = 1;
  InvariantAuditor auditor(cfg);
  auditor.record(ev(0.0, EventType::kArrival, 0, 0));
  auditor.record(ev(0.001, EventType::kTxStart, 0, 0, "DATA"));
  auditor.record(ev(0.002, EventType::kTxEnd, 0, 0, "DATA"));
  auditor.record(ev(0.003, EventType::kStateChange, 0, 0, "DELIVERED"));
  EXPECT_EQ(auditor.finalize(0.01), 0u);
  EXPECT_TRUE(auditor.flight_recorder_json().empty());
}

TEST(InvariantAuditor, CorruptedTraceTriggersBreachWithFlightRecorder) {
  const std::string dump_path =
      testing::TempDir() + "/lifecycle_flight_recorder.json";
  std::remove(dump_path.c_str());
  InvariantAuditor::Config cfg;
  cfg.n_nodes = 2;
  cfg.n_flows = 1;
  cfg.dump_path = dump_path;
  InvariantAuditor auditor(cfg);

  auditor.record(ev(0.001, EventType::kTxStart, 0, 0, "DATA"));
  // Corruption 1: a second TX_START at the same node with no TX_END.
  auditor.record(ev(0.002, EventType::kTxStart, 0, 0, "DATA"));
  // Corruption 2: time runs backwards.
  auditor.record(ev(0.001, EventType::kTxEnd, 0, 0, "DATA"));
  // Corruption 3: delivery without any arrival is fine (saturated), but
  // more completions than arrivals on an arrival-backed flow is not.
  auditor.record(ev(0.003, EventType::kArrival, 1, 0));
  auditor.record(ev(0.004, EventType::kStateChange, 1, 0, "DELIVERED"));
  auditor.record(ev(0.005, EventType::kStateChange, 1, 0, "DELIVERED"));

  EXPECT_GE(auditor.finalize(0.01), 3u);
  ASSERT_FALSE(auditor.breach_messages().empty());

  // The in-memory post-mortem parses as JSON and carries the events.
  const std::string json = auditor.flight_recorder_json();
  ASSERT_FALSE(json.empty());
  const JsonValue v = JsonValue::parse(json);
  EXPECT_EQ(v.at("schema").as_string(), "holtwlan-flight-recorder-v1");
  EXPECT_GE(v.at("breaches").as_number(), 3.0);
  EXPECT_FALSE(v.at("messages").items().empty());
  EXPECT_FALSE(v.at("events").items().empty());

  // And the same document landed at the configured dump path.
  std::ifstream in(dump_path);
  ASSERT_TRUE(in.is_open());
  std::stringstream file_contents;
  file_contents << in.rdbuf();
  EXPECT_FALSE(file_contents.str().empty());
  EXPECT_NO_THROW(JsonValue::parse(file_contents.str()));
  std::remove(dump_path.c_str());
}

TEST(InvariantAuditor, AirtimePartitionMustClose) {
  InvariantAuditor::Config cfg;
  cfg.n_nodes = 1;
  cfg.n_flows = 1;
  InvariantAuditor auditor(cfg);
  AirtimeReport report;
  report.duration_s = 1.0;
  report.idle_s = 0.5;
  report.busy_s = 0.3;
  report.collision_s = 0.1;  // 0.1 s of channel time unaccounted
  auditor.audit(report);
  EXPECT_GE(auditor.breaches(), 1u);
}

TEST(InvariantAuditor, LedgerConservationCrossCheck) {
  InvariantAuditor::Config cfg;
  cfg.n_nodes = 1;
  cfg.n_flows = 1;
  InvariantAuditor auditor(cfg);
  LifecycleReport ledger;
  ledger.flows.resize(1);
  ledger.flows[0].arrivals = 10;
  ledger.flows[0].delivered = 6;
  ledger.flows[0].dropped = 1;
  ledger.flows[0].in_flight = 3;
  auditor.audit(ledger);
  EXPECT_EQ(auditor.breaches(), 0u);
  ledger.flows[0].in_flight = 2;  // one frame vanished
  auditor.audit(ledger);
  EXPECT_EQ(auditor.breaches(), 1u);
}

// ---------------------------------------------------------------------------
// Netsim integration: reconciliation and shard-merge identity
// ---------------------------------------------------------------------------

net::NetworkConfig lifecycle_config() {
  net::NetworkConfig cfg;
  cfg.duration_s = 0.2;
  cfg.lifecycle.enabled = true;
  return cfg;
}

std::vector<net::NodeConfig> three_nodes() {
  std::vector<net::NodeConfig> nodes(3);
  nodes[1].position = {20.0, 0.0};
  nodes[2].position = {10.0, 10.0};
  return nodes;
}

TEST(LifecycleNetsim, LedgerReconcilesWithSimulatorCounters) {
  // One saturated and one Poisson flow into a shared receiver.
  const net::NetworkConfig cfg = lifecycle_config();
  const std::vector<net::Flow> flows = {{0, 2, 0.0}, {1, 2, 2000.0}};
  Rng rng(42);
  obs::Registry reg;
  net::NetworkConfig run_cfg = cfg;
  run_cfg.registry = &reg;
  const auto result = net::simulate_network(run_cfg, three_nodes(), flows, rng);

  EXPECT_EQ(result.lifecycle.breaches, 0u) << [&] {
    std::string all;
    for (const auto& m : result.lifecycle.breach_messages) all += m + "\n";
    return all;
  }();
  ASSERT_EQ(result.lifecycle.ledger.flows.size(), 2u);
  for (std::size_t f = 0; f < 2; ++f) {
    const FlowLifecycle& lf = result.lifecycle.ledger.flows[f];
    const net::FlowStats& fs = result.flows[f];
    // The ledger reconstructs delivery/drop counts purely from events;
    // they must agree with the simulator's own counters.
    EXPECT_EQ(lf.delivered, fs.delivered) << "flow " << f;
    EXPECT_EQ(lf.dropped, fs.drops) << "flow " << f;
    EXPECT_EQ(lf.arrivals, lf.delivered + lf.dropped + lf.in_flight)
        << "flow " << f;
  }
  // The Poisson flow's ledger delay must agree with the simulator's own
  // queue-timestamp bookkeeping (same quantity, independent pipelines;
  // only floating-point segment summation separates them).
  const FlowLifecycle& poisson = result.lifecycle.ledger.flows[1];
  ASSERT_GT(poisson.delivered, 0u);
  EXPECT_NEAR(poisson.mean_delay_s, result.flows[1].mean_delay_s,
              1e-9 * std::max(1.0, result.flows[1].mean_delay_s));
  // Delivered-frame count in the delay histogram matches the ledger.
  const Histogram* h = reg.find_histogram("lifecycle.delay_s");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), result.lifecycle.ledger.delivered);
}

// Compares every lifecycle histogram of two registries bitwise.
void expect_histograms_identical(const Registry& a, const Registry& b,
                                 std::size_t n_flows) {
  std::vector<std::vector<Label>> keys;
  keys.push_back({});
  for (std::size_t f = 0; f < n_flows; ++f) {
    keys.push_back({{"flow", std::to_string(f)}});
  }
  for (const auto& labels : keys) {
    SCOPED_TRACE(labels.empty() ? "aggregate" : "flow " + labels[0].value);
    const Histogram* ha = a.find_histogram("lifecycle.delay_s", labels);
    const Histogram* hb = b.find_histogram("lifecycle.delay_s", labels);
    ASSERT_NE(ha, nullptr);
    ASSERT_NE(hb, nullptr);
    EXPECT_EQ(ha->count(), hb->count());
    // Bitwise: merge order is run order in both batches, so even the
    // floating-point sums must agree exactly.
    EXPECT_EQ(ha->sum(), hb->sum());
    EXPECT_EQ(ha->min(), hb->min());
    EXPECT_EQ(ha->max(), hb->max());
    EXPECT_EQ(ha->underflow(), hb->underflow());
    EXPECT_EQ(ha->overflow(), hb->overflow());
    ASSERT_EQ(ha->bins(), hb->bins());
    for (std::size_t i = 0; i < ha->bins(); ++i) {
      EXPECT_EQ(ha->bin_count(i), hb->bin_count(i)) << "bin " << i;
    }
  }
}

TEST(LifecycleNetsim, BatchHistogramsBitwiseIdenticalAcrossJobCounts) {
  const net::NetworkConfig cfg = lifecycle_config();
  const std::vector<net::Flow> flows = {{0, 2, 0.0}, {1, 2, 2000.0}};
  constexpr std::size_t kRuns = 6;

  Registry reg_serial;
  net::BatchOptions serial;
  serial.jobs = 1;
  serial.registry = &reg_serial;
  const auto runs_serial = net::simulate_network_batch(cfg, three_nodes(),
                                                      flows, kRuns, serial);

  Registry reg_parallel;
  net::BatchOptions parallel;
  parallel.jobs = 8;
  parallel.registry = &reg_parallel;
  const auto runs_parallel = net::simulate_network_batch(
      cfg, three_nodes(), flows, kRuns, parallel);

  ASSERT_EQ(runs_serial.size(), runs_parallel.size());
  for (std::size_t r = 0; r < kRuns; ++r) {
    EXPECT_EQ(runs_serial[r].lifecycle.breaches, 0u);
    EXPECT_EQ(runs_parallel[r].lifecycle.breaches, 0u);
    EXPECT_EQ(runs_serial[r].lifecycle.ledger.delivered,
              runs_parallel[r].lifecycle.ledger.delivered);
  }
  expect_histograms_identical(reg_serial, reg_parallel, flows.size());
  // The whole snapshot (counters, gauges, every histogram) must match
  // textually too — instrument entry order is creation order, which the
  // upfront registration in FrameLedger keeps schedule-independent.
  EXPECT_EQ(reg_serial.snapshot_json(), reg_parallel.snapshot_json());
}

TEST(LifecycleNetsim, DisabledLifecycleLeavesResultEmpty) {
  net::NetworkConfig cfg;
  cfg.duration_s = 0.05;
  Rng rng(7);
  const auto result =
      net::simulate_network(cfg, three_nodes(), {{0, 2, 0.0}}, rng);
  EXPECT_TRUE(result.lifecycle.ledger.flows.empty());
  EXPECT_EQ(result.lifecycle.breaches, 0u);
  EXPECT_TRUE(result.lifecycle.flight_recorder_json.empty());
}

}  // namespace
}  // namespace wlan::obs

// Pins the saturating-arithmetic clamp semantics documented in
// dsp/saturate.h, especially the INT8_MIN/INT16_MIN boundaries where
// plain C++ arithmetic would wrap or hit UB, plus the Q15 rounding
// multiply and the LLR quantizer the int16 decoder fast paths rely on.
#include <climits>
#include <cstdint>

#include <gtest/gtest.h>

#include "dsp/saturate.h"

namespace wlan::dsp {
namespace {

TEST(SaturateI16, ClampsAtBothRails) {
  EXPECT_EQ(sat_i16(40000), INT16_MAX);
  EXPECT_EQ(sat_i16(-40000), INT16_MIN);
  EXPECT_EQ(sat_i16(32767), INT16_MAX);
  EXPECT_EQ(sat_i16(-32768), INT16_MIN);
  EXPECT_EQ(sat_i16(123), 123);
}

TEST(SaturateI16, AddSubSaturate) {
  EXPECT_EQ(sat_add_i16(INT16_MAX, 1), INT16_MAX);
  EXPECT_EQ(sat_add_i16(INT16_MIN, -1), INT16_MIN);
  EXPECT_EQ(sat_add_i16(INT16_MAX, INT16_MAX), INT16_MAX);
  EXPECT_EQ(sat_sub_i16(INT16_MIN, 1), INT16_MIN);
  EXPECT_EQ(sat_sub_i16(INT16_MAX, -1), INT16_MAX);
  EXPECT_EQ(sat_sub_i16(0, INT16_MIN), INT16_MAX);  // -MIN saturates
  EXPECT_EQ(sat_add_i16(100, -30), 70);
  EXPECT_EQ(sat_sub_i16(100, 30), 70);
}

TEST(SaturateI16, NegAndAbsAtIntMin) {
  EXPECT_EQ(sat_neg_i16(INT16_MIN), INT16_MAX);
  EXPECT_EQ(sat_neg_i16(INT16_MAX), -INT16_MAX);
  EXPECT_EQ(sat_neg_i16(0), 0);
  EXPECT_EQ(sat_abs_i16(INT16_MIN), INT16_MAX);
  EXPECT_EQ(sat_abs_i16(INT16_MAX), INT16_MAX);
  EXPECT_EQ(sat_abs_i16(-5), 5);
  EXPECT_EQ(sat_abs_i16(5), 5);
}

TEST(SaturateI8, ClampsAtBothRails) {
  EXPECT_EQ(sat_i8(200), INT8_MAX);
  EXPECT_EQ(sat_i8(-200), INT8_MIN);
  EXPECT_EQ(sat_add_i8(INT8_MAX, 1), INT8_MAX);
  EXPECT_EQ(sat_add_i8(INT8_MIN, -1), INT8_MIN);
  EXPECT_EQ(sat_sub_i8(INT8_MIN, 1), INT8_MIN);
  EXPECT_EQ(sat_sub_i8(0, INT8_MIN), INT8_MAX);
}

TEST(SaturateI8, NegAndAbsAtIntMin) {
  EXPECT_EQ(sat_neg_i8(INT8_MIN), INT8_MAX);
  EXPECT_EQ(sat_abs_i8(INT8_MIN), INT8_MAX);
  EXPECT_EQ(sat_abs_i8(-3), 3);
}

TEST(MulhrsI16, MatchesQ15RoundingDefinition) {
  // 0.8 in Q15 is 26214; 1000 * 0.8 = 800.0 with rounding.
  EXPECT_EQ(mulhrs_i16(1000, 26214), 800);
  // (16384 * 16384 + 0x4000) >> 15 = 8192 (0.5 * 0.5 = 0.25).
  EXPECT_EQ(mulhrs_i16(16384, 16384), 8192);
  EXPECT_EQ(mulhrs_i16(0, 26214), 0);
  EXPECT_EQ(mulhrs_i16(-1000, 26214), -800);
  // Widened product cannot overflow int32; the result saturates.
  EXPECT_EQ(mulhrs_i16(INT16_MIN, INT16_MIN), INT16_MAX);
  EXPECT_EQ(mulhrs_i16(INT16_MAX, INT16_MAX), 32766);
}

TEST(QuantizeLlr, RoundsAndClampsToLimit) {
  EXPECT_EQ(quantize_llr_i16(0.0, 10.0, 127), 0);
  EXPECT_EQ(quantize_llr_i16(1.24, 10.0, 127), 12);
  EXPECT_EQ(quantize_llr_i16(1.26, 10.0, 127), 13);
  // Ties round away from zero (std::lround).
  EXPECT_EQ(quantize_llr_i16(0.25, 10.0, 127), 3);
  EXPECT_EQ(quantize_llr_i16(-0.25, 10.0, 127), -3);
  // Clamped symmetrically at ±limit.
  EXPECT_EQ(quantize_llr_i16(1e9, 1.0, 127), 127);
  EXPECT_EQ(quantize_llr_i16(-1e9, 1.0, 127), -127);
  EXPECT_EQ(quantize_llr_i16(1e9, 1.0, 96), 96);
}

}  // namespace
}  // namespace wlan::dsp

// Extension bench — rate adaptation over a time-varying channel.
//
// The paper's rate narrative (2 -> 11 -> 54 -> 600 Mbps) is realized in
// deployed networks by rate-adaptation logic. This bench compares the
// classic ACK-driven ARF controller against a fixed top rate and against
// the genie SNR-ideal controller across mean SNR and channel dynamics.
#include <vector>

#include "bench_util.h"
#include "core/wlan.h"

int main(int argc, char** argv) {
  using namespace wlan;
  namespace bu = benchutil;
  bu::args(argc, argv);

  bu::title("EXT: rate adaptation (ARF vs fixed vs genie) over Jakes fading",
            "adaptation is what turns the standards' rate ladders into "
            "delivered throughput in a changing channel");

  // Common random numbers: each controller in a comparison sees the exact
  // same fading realization and error draws (paired seeds).
  bu::section("goodput (Mbps of airtime) vs mean SNR, walking-speed fading "
              "(5 Hz)");
  std::printf("%10s %12s %12s %12s | %10s\n", "SNR(dB)", "fixed 54M", "ARF",
              "genie", "ARF PER");
  std::uint64_t seed = 14;
  std::vector<double> snrs;
  std::vector<double> gp_fixed;
  std::vector<double> gp_arf;
  std::vector<double> gp_genie;
  for (const double snr : {8.0, 12.0, 16.0, 20.0, 24.0, 30.0}) {
    ++seed;
    mac::RateAdaptConfig cfg;
    cfg.mean_snr_db = snr;
    cfg.n_packets = 20000;
    cfg.control = mac::RateControl::kFixedMax;
    Rng r1(seed);
    const auto fixed = mac::simulate_rate_adaptation(cfg, r1);
    cfg.control = mac::RateControl::kArf;
    Rng r2(seed);
    const auto arf = mac::simulate_rate_adaptation(cfg, r2);
    cfg.control = mac::RateControl::kSnrIdeal;
    Rng r3(seed);
    const auto genie = mac::simulate_rate_adaptation(cfg, r3);
    snrs.push_back(snr);
    gp_fixed.push_back(fixed.goodput_mbps);
    gp_arf.push_back(arf.goodput_mbps);
    gp_genie.push_back(genie.goodput_mbps);
    std::printf("%10.1f %12.1f %12.1f %12.1f | %10.2f\n", snr,
                fixed.goodput_mbps, arf.goodput_mbps, genie.goodput_mbps,
                arf.per);
  }
  bu::series("goodput_vs_snr_fixed_54m", "snr_db", snrs, "mbps", gp_fixed);
  bu::series("goodput_vs_snr_arf", "snr_db", snrs, "mbps", gp_arf);
  bu::series("goodput_vs_snr_genie", "snr_db", snrs, "mbps", gp_genie);

  bu::section("channel dynamics: ARF's gap to the genie vs Doppler (16 dB "
              "mean SNR)");
  std::printf("%14s %12s %12s %10s\n", "Doppler(Hz)", "ARF", "genie", "gap");
  double gap_slow = 0.0;
  double gap_fast = 0.0;
  for (const double fd : {0.5, 2.0, 10.0, 50.0}) {
    ++seed;
    mac::RateAdaptConfig cfg;
    cfg.mean_snr_db = 16.0;
    cfg.doppler_hz = fd;
    cfg.n_packets = 20000;
    cfg.control = mac::RateControl::kArf;
    Rng r1(seed);
    const auto arf = mac::simulate_rate_adaptation(cfg, r1);
    cfg.control = mac::RateControl::kSnrIdeal;
    Rng r2(seed);
    const auto genie = mac::simulate_rate_adaptation(cfg, r2);
    const double gap = genie.goodput_mbps - arf.goodput_mbps;
    if (fd == 0.5) gap_slow = gap;
    if (fd == 50.0) gap_fast = gap;
    std::printf("%14.1f %12.1f %12.1f %10.1f\n", fd, arf.goodput_mbps,
                genie.goodput_mbps, gap);
  }

  bu::metric("genie_gap_mbps_doppler_0_5hz", gap_slow);
  bu::metric("genie_gap_mbps_doppler_50hz", gap_fast);
  const bool ok = gap_fast > gap_slow;
  bu::verdict(ok,
              "ARF trails the genie by %.1f Mbps in slow fading but %.1f "
              "Mbps when the channel outruns its ACK feedback",
              gap_slow, gap_fast);
  return ok ? 0 : 1;
}

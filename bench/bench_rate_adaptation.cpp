// Extension bench — rate adaptation over a time-varying channel.
//
// The paper's rate narrative (2 -> 11 -> 54 -> 600 Mbps) is realized in
// deployed networks by rate-adaptation logic. This bench compares the
// classic ACK-driven ARF controller against a fixed top rate and against
// the genie SNR-ideal controller across mean SNR and channel dynamics.
#include <vector>

#include "bench_util.h"
#include "core/wlan.h"

int main(int argc, char** argv) {
  using namespace wlan;
  namespace bu = benchutil;
  bu::args(argc, argv);

  bu::title("EXT: rate adaptation (ARF vs fixed vs genie) over Jakes fading",
            "adaptation is what turns the standards' rate ladders into "
            "delivered throughput in a changing channel");

  // Common random numbers: each controller in a comparison sees the exact
  // same fading realization and error draws (paired seeds).
  bu::section("goodput (Mbps of airtime) vs mean SNR, walking-speed fading "
              "(5 Hz)");
  std::printf("%10s %12s %12s %12s | %10s\n", "SNR(dB)", "fixed 54M", "ARF",
              "genie", "ARF PER");
  std::uint64_t seed = 14;
  std::vector<double> snrs;
  std::vector<double> gp_fixed;
  std::vector<double> gp_arf;
  std::vector<double> gp_genie;
  for (const double snr : {8.0, 12.0, 16.0, 20.0, 24.0, 30.0}) {
    ++seed;
    mac::RateAdaptConfig cfg;
    cfg.mean_snr_db = snr;
    cfg.n_packets = 20000;
    cfg.control = mac::RateControl::kFixedMax;
    Rng r1(seed);
    const auto fixed = mac::simulate_rate_adaptation(cfg, r1);
    cfg.control = mac::RateControl::kArf;
    Rng r2(seed);
    const auto arf = mac::simulate_rate_adaptation(cfg, r2);
    cfg.control = mac::RateControl::kSnrIdeal;
    Rng r3(seed);
    const auto genie = mac::simulate_rate_adaptation(cfg, r3);
    snrs.push_back(snr);
    gp_fixed.push_back(fixed.goodput_mbps);
    gp_arf.push_back(arf.goodput_mbps);
    gp_genie.push_back(genie.goodput_mbps);
    std::printf("%10.1f %12.1f %12.1f %12.1f | %10.2f\n", snr,
                fixed.goodput_mbps, arf.goodput_mbps, genie.goodput_mbps,
                arf.per);
  }
  bu::series("goodput_vs_snr_fixed_54m", "snr_db", snrs, "mbps", gp_fixed);
  bu::series("goodput_vs_snr_arf", "snr_db", snrs, "mbps", gp_arf);
  bu::series("goodput_vs_snr_genie", "snr_db", snrs, "mbps", gp_genie);

  bu::section("channel dynamics: ARF's gap to the genie vs Doppler (16 dB "
              "mean SNR)");
  std::printf("%14s %12s %12s %10s\n", "Doppler(Hz)", "ARF", "genie", "gap");
  double gap_slow = 0.0;
  double gap_fast = 0.0;
  for (const double fd : {0.5, 2.0, 10.0, 50.0}) {
    ++seed;
    mac::RateAdaptConfig cfg;
    cfg.mean_snr_db = 16.0;
    cfg.doppler_hz = fd;
    cfg.n_packets = 20000;
    cfg.control = mac::RateControl::kArf;
    Rng r1(seed);
    const auto arf = mac::simulate_rate_adaptation(cfg, r1);
    cfg.control = mac::RateControl::kSnrIdeal;
    Rng r2(seed);
    const auto genie = mac::simulate_rate_adaptation(cfg, r2);
    const double gap = genie.goodput_mbps - arf.goodput_mbps;
    if (fd == 0.5) gap_slow = gap;
    if (fd == 50.0) gap_fast = gap;
    std::printf("%14.1f %12.1f %12.1f %10.1f\n", fd, arf.goodput_mbps,
                genie.goodput_mbps, gap);
  }

  bu::metric("genie_gap_mbps_doppler_0_5hz", gap_slow);
  bu::metric("genie_gap_mbps_doppler_50hz", gap_fast);

  bool audit_ok = true;
  if (bu::latency()) {
    // What rate adaptation does to *latency*: a Poisson uplink through
    // the event-driven netsim with ARF under the PER model, with the
    // frame-lifecycle ledger attributing each delivered frame's delay.
    // Own Rng — the seeded comparisons above are untouched.
    bu::section("ARF uplink latency attribution (--latency, netsim)");
    net::NetworkConfig ncfg;
    ncfg.duration_s = 2.0;
    ncfg.payload_bytes = 1000;
    ncfg.error_model.model = net::RxModel::kPerModel;
    ncfg.error_model.realizations = 16;
    ncfg.rate_control = net::RateControlMode::kArf;
    ncfg.lifecycle.enabled = true;
    obs::Registry reg;
    ncfg.registry = &reg;
    std::vector<net::NodeConfig> nodes(2);
    nodes[1].position = {25.0, 0.0};
    Rng nrng(97);
    const auto res =
        net::simulate_network(ncfg, nodes, {{0, 1, 1000.0}}, nrng);
    const auto& lc = res.lifecycle;
    const obs::Histogram* h = reg.find_histogram("lifecycle.delay_s");
    if (h && h->count() > 0) {
      bu::metric("arf_uplink_delay_p50_ms", h->percentile(50.0) * 1e3);
      bu::metric("arf_uplink_delay_p99_ms", h->percentile(99.0) * 1e3);
      std::printf("  delay p50/p99: %.2f / %.2f ms over %llu deliveries\n",
                  h->percentile(50.0) * 1e3, h->percentile(99.0) * 1e3,
                  static_cast<unsigned long long>(h->count()));
    }
    const auto& tot = lc.ledger.total;
    if (tot.total_s() > 0.0) {
      bu::metric("arf_uplink_queueing_share", tot.queueing_s / tot.total_s());
      bu::metric("arf_uplink_retry_share", tot.retry_s / tot.total_s());
      std::printf(
          "  attribution: queueing %.0f%%, contention %.0f%%, airtime "
          "%.0f%%, retry %.0f%%\n",
          100.0 * tot.queueing_s / tot.total_s(),
          100.0 * tot.contention_s / tot.total_s(),
          100.0 * tot.airtime_s / tot.total_s(),
          100.0 * tot.retry_s / tot.total_s());
    }
    bu::metric("lifecycle_breaches", static_cast<double>(lc.breaches));
    for (const std::string& m : lc.breach_messages) {
      std::printf("  BREACH: %s\n", m.c_str());
    }
    audit_ok = lc.breaches == 0;
  }

  const bool ok = audit_ok && gap_fast > gap_slow;
  bu::verdict(ok,
              "ARF trails the genie by %.1f Mbps in slow fading but %.1f "
              "Mbps when the channel outruns its ACK feedback",
              gap_slow, gap_fast);
  return ok ? 0 : 1;
}

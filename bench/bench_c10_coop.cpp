// C10 — Cooperative diversity improves effective link quality.
//
// Paper: "third parties which can successfully decode an on-going
// exchange will effectively regenerate and relay, with appropriate
// coding, the original transmission in order to improve the effective
// link quality between the intended parties."
#include <cmath>
#include <vector>

#include "bench_util.h"
#include "core/wlan.h"

int main(int argc, char** argv) {
  using namespace wlan;
  namespace bu = benchutil;
  bu::args(argc, argv);

  bu::title("C10: decode-and-forward cooperative diversity",
            "a relaying third party steepens the outage curve (diversity "
            "order 2), improving effective link quality");

  Rng rng(10);
  const std::size_t trials = 200000;
  const double rate = 1.0;  // bps/Hz end-to-end

  bu::section("outage probability vs mean S-D SNR (relay links +5 dB)");
  std::printf("%10s %12s %14s %14s\n", "SNR(dB)", "direct", "DF repetition",
              "DF selection");
  std::vector<double> snrs;
  std::vector<double> out_direct;
  std::vector<double> out_rep;
  std::vector<double> out_sel;
  for (double snr = 4.0; snr <= 24.0; snr += 2.0) {
    coop::CoopConfig direct;
    direct.scheme = coop::Scheme::kDirect;
    direct.target_rate_bps_hz = rate;
    direct.mean_snr_sd_db = snr;
    coop::CoopConfig rep = direct;
    rep.scheme = coop::Scheme::kDfRepetition;
    rep.mean_snr_sr_db = snr + 5.0;
    rep.mean_snr_rd_db = snr + 5.0;
    coop::CoopConfig sel = rep;
    sel.scheme = coop::Scheme::kDfSelection;
    const auto rd = coop::simulate(direct, trials, rng);
    const auto rr = coop::simulate(rep, trials, rng);
    const auto rs = coop::simulate(sel, trials, rng);
    snrs.push_back(snr);
    out_direct.push_back(rd.outage_probability);
    out_rep.push_back(rr.outage_probability);
    out_sel.push_back(rs.outage_probability);
    std::printf("%10.1f %12.4f %14.4f %14.4f\n", snr, rd.outage_probability,
                rr.outage_probability, rs.outage_probability);
  }

  bu::series("outage_vs_snr_direct", "snr_db", snrs, "outage", out_direct);
  bu::series("outage_vs_snr_df_repetition", "snr_db", snrs, "outage", out_rep);
  bu::series("outage_vs_snr_df_selection", "snr_db", snrs, "outage", out_sel);

  // Diversity order = slope of log10(outage) per decade of SNR.
  auto slope = [&](const std::vector<double>& outage) {
    const double lo = outage[2];   // 8 dB
    const double hi = outage[8];   // 20 dB
    return std::log10(lo / hi) / 1.2;
  };
  const double d_direct = slope(out_direct);
  const double d_rep = slope(out_rep);
  const double d_sel = slope(out_sel);

  bu::section("diversity order (outage slope, 8 -> 20 dB)");
  std::printf("  direct        : %4.2f (theory 1)\n", d_direct);
  std::printf("  DF repetition : %4.2f (theory 2)\n", d_rep);
  std::printf("  DF selection  : %4.2f (theory 2)\n", d_sel);

  bu::section("relay geometry sweep (S-D 60 m, 17 dBm, relay on the line)");
  std::printf("%16s %12s %16s\n", "relay position", "outage", "relay decodes");
  channel::PathLossModel pl;
  double best_outage = 1.0;
  for (const double pos : {0.2, 0.35, 0.5, 0.65, 0.8}) {
    const auto cfg = coop::geometry_config(coop::Scheme::kDfSelection, rate,
                                           60.0, pos, pl, 17.0);
    const auto r = coop::simulate(cfg, trials / 4, rng);
    best_outage = std::min(best_outage, r.outage_probability);
    std::printf("%15.0f%% %12.4f %15.0f%%\n", pos * 100.0,
                r.outage_probability, r.relay_decode_fraction * 100.0);
  }
  {
    coop::CoopConfig direct = coop::geometry_config(
        coop::Scheme::kDirect, rate, 60.0, 0.5, pl, 17.0);
    const auto r = coop::simulate(direct, trials / 4, rng);
    std::printf("%16s %12.4f\n", "(direct)", r.outage_probability);
    best_outage = best_outage / std::max(r.outage_probability, 1e-9);
  }

  bu::metric("diversity_order_direct", d_direct);
  bu::metric("diversity_order_df_repetition", d_rep);
  bu::metric("diversity_order_df_selection", d_sel);
  bu::metric("best_outage_ratio_vs_direct", best_outage);
  const bool ok = d_direct < 1.4 && d_rep > 1.5 && d_sel > 1.5;
  bu::verdict(ok,
              "cooperation doubles the diversity order (%.1f -> %.1f) and a "
              "mid-path relay cuts outage to %.2fx the direct link's",
              d_direct, d_sel, best_outage);
  return ok ? 0 : 1;
}

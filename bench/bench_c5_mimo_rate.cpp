// C5 — MIMO rate scaling: "efficiencies up to 15 bps/Hz", "600 Mbps in a
// 40 MHz channel".
//
// Paper: "MIMO ... allows spectral efficiencies and hence data rates which
// were heretofore unreachable. The future 802.11n standard is certain to
// incorporate this technology, and efficiencies up to 15 bps/Hz are
// likely to be specified at the highest rate modes which maintains the
// historical trend of fivefold increases with each new standard."
#include <vector>

#include "bench_util.h"
#include "core/wlan.h"

int main(int argc, char** argv) {
  using namespace wlan;
  namespace bu = benchutil;
  bu::args(argc, argv);

  bu::title("C5: MIMO spatial multiplexing — capacity and 802.11n throughput",
            "capacity grows ~linearly in min(Ntx,Nrx); the 4-stream 40 MHz "
            "short-GI mode reaches 600 Mbps = 15 bps/Hz");

  Rng rng(5);

  bu::section("ergodic MIMO capacity (i.i.d. Rayleigh, equal power), bps/Hz");
  std::printf("%9s %8s %8s %8s %8s\n", "SNR(dB)", "1x1", "2x2", "3x3", "4x4");
  const int trials = 300;
  std::vector<double> cap4_at20;
  std::vector<double> cap_snrs;
  std::vector<std::vector<double>> caps(4);
  for (const double snr_db : {0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0}) {
    const double snr = db_to_lin(snr_db);
    cap_snrs.push_back(snr_db);
    std::printf("%9.1f", snr_db);
    for (const std::size_t n : {1u, 2u, 3u, 4u}) {
      double c = 0.0;
      for (int t = 0; t < trials; ++t) {
        c += linalg::mimo_capacity_bps_hz(
            channel::iid_rayleigh_matrix(rng, n, n), snr);
      }
      c /= trials;
      caps[n - 1].push_back(c);
      std::printf(" %8.2f", c);
      if (snr_db == 20.0 && n == 4) cap4_at20.push_back(c);
    }
    std::printf("\n");
  }
  for (std::size_t n = 1; n <= 4; ++n) {
    bu::series("capacity_bps_hz_" + std::to_string(n) + "x" +
                   std::to_string(n),
               "snr_db", cap_snrs, "bps_hz", caps[n - 1]);
  }

  bu::section("802.11n throughput vs SNR (40 MHz, short GI, office channel)");
  std::printf("%9s %12s %12s %12s\n", "SNR(dB)", "1 stream", "2 streams",
              "4 streams");
  const std::size_t psdu = 500;
  const std::size_t packets = 25;
  double best600 = 0.0;
  for (const double snr : {10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0}) {
    std::printf("%9.1f", snr);
    for (const unsigned base : {7u, 15u, 31u}) {
      // Best goodput over the stream count's MCS set at this SNR.
      double best = 0.0;
      const unsigned lo = base - 7;
      for (unsigned mcs = lo; mcs <= base; ++mcs) {
        phy::HtConfig cfg;
        cfg.mcs = mcs;
        cfg.bandwidth = phy::HtBandwidth::k40MHz;
        cfg.guard = phy::HtGuardInterval::kShort;
        const phy::HtPhy phy(cfg);
        if (phy.data_rate_mbps() <= best) continue;
        const LinkResult r = run_ht_link(cfg, psdu, packets, snr, rng,
                                         channel::DelayProfile::kOffice);
        best = std::max(best, r.goodput_mbps(phy.data_rate_mbps()));
      }
      std::printf(" %12.1f", best);
      if (base == 31) best600 = std::max(best600, best);
    }
    std::printf("\n");
  }

  const double eff = best600 / 40.0;
  bu::metric("capacity_4x4_at_20db_bps_hz",
             cap4_at20.empty() ? 0.0 : cap4_at20[0]);
  bu::metric("best_goodput_mcs31_40mhz_mbps", best600);
  bu::metric("spectral_efficiency_bps_hz", eff);
  bu::section("headline mode");
  std::printf("  MCS31 @ 40 MHz + short GI: PHY rate %.0f Mbps, measured "
              "goodput %.0f Mbps, %.1f bps/Hz\n",
              phy::ht_data_rate_mbps(31, phy::HtBandwidth::k40MHz,
                                     phy::HtGuardInterval::kShort),
              best600, eff);

  const bool capacity_scales = cap4_at20.size() == 1 && cap4_at20[0] > 18.0;
  const bool reaches = best600 > 500.0;
  bu::verdict(capacity_scales && reaches,
              "4x4 capacity %.1f bps/Hz at 20 dB; 600 Mbps mode delivers "
              "%.0f Mbps (%.1f bps/Hz) at high SNR",
              cap4_at20.empty() ? 0.0 : cap4_at20[0], best600, eff);
  return capacity_scales && reaches ? 0 : 1;
}

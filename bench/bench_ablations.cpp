// Ablations over the design choices DESIGN.md calls out:
//   - soft vs hard Viterbi decisions
//   - MMSE vs zero-forcing MIMO detection
//   - normalized vs plain min-sum LDPC decoding
//   - A-MPDU aggregation depth at high PHY rate
// (Airtime-vs-hop-count routing and selection-vs-repetition relaying are
// ablated inside bench_c9 / bench_c10.)
#include <vector>

#include "bench_util.h"
#include "common/bits.h"
#include "core/wlan.h"
#include "mac/edca.h"

int main(int argc, char** argv) {
  using namespace wlan;
  namespace bu = benchutil;
  bu::args(argc, argv);

  bu::title("Ablations", "design choices and what they are worth");

  Rng rng(99);

  bu::section("soft vs hard Viterbi (coded BPSK, BER at Eb/N0 = 4 dB)");
  {
    const double sigma = std::sqrt(1.0 / db_to_lin(4.0));
    std::size_t soft_err = 0;
    std::size_t hard_err = 0;
    std::size_t total = 0;
    for (int b = 0; b < 80; ++b) {
      Bits info = rng.random_bits(400);
      for (std::size_t i = 394; i < 400; ++i) info[i] = 0;
      const Bits coded = phy::convolutional_encode(info);
      RVec soft(coded.size());
      RVec hard(coded.size());
      for (std::size_t i = 0; i < coded.size(); ++i) {
        const double rx = (coded[i] ? -1.0 : 1.0) + sigma * rng.gaussian();
        soft[i] = 2.0 * rx / (sigma * sigma);
        hard[i] = rx >= 0.0 ? 1.0 : -1.0;
      }
      soft_err += hamming_distance(phy::viterbi_decode(soft, true), info);
      hard_err += hamming_distance(phy::viterbi_decode(hard, true), info);
      total += info.size();
    }
    std::printf("  soft BER %.5f vs hard BER %.5f (%.1fx fewer errors)\n",
                static_cast<double>(soft_err) / total,
                static_cast<double>(hard_err) / total,
                static_cast<double>(hard_err) / std::max<std::size_t>(soft_err, 1));
    bu::metric("viterbi_soft_ber_at_4db", static_cast<double>(soft_err) / total);
    bu::metric("viterbi_hard_ber_at_4db", static_cast<double>(hard_err) / total);
  }

  bu::section("MMSE vs zero-forcing (2x2 spatial multiplexing, PER vs SNR)");
  {
    std::printf("%10s %10s %10s\n", "SNR(dB)", "ZF", "MMSE");
    for (const double snr : {10.0, 13.0, 16.0, 19.0}) {
      double per[2];
      int idx = 0;
      for (const auto det :
           {phy::MimoDetector::kZeroForcing, phy::MimoDetector::kMmse}) {
        phy::HtConfig cfg;
        cfg.mcs = 9;  // QPSK 1/2, 2 streams
        cfg.detector = det;
        per[idx++] =
            run_ht_link(cfg, 400, 60, snr, rng, channel::DelayProfile::kOffice)
                .per();
      }
      std::printf("%10.1f %10.2f %10.2f\n", snr, per[0], per[1]);
    }
  }

  bu::section("SIC vs one-shot detection (2x2 16-QAM 1/2, coded PER)");
  {
    std::printf("%10s %10s %10s %10s\n", "SNR(dB)", "ZF", "MMSE", "MMSE-SIC");
    for (const double snr : {14.0, 17.0, 20.0, 23.0}) {
      std::printf("%10.1f", snr);
      for (const auto det :
           {phy::MimoDetector::kZeroForcing, phy::MimoDetector::kMmse,
            phy::MimoDetector::kMmseSic}) {
        Rng r(53);
        phy::HtConfig cfg;
        cfg.mcs = 11;
        cfg.detector = det;
        std::printf(" %10.3f",
                    run_ht_link(cfg, 100, 120, snr, r,
                                channel::DelayProfile::kOffice).per());
      }
      std::printf("\n");
    }
    std::printf("  (hard-decision SIC propagates slicing errors into the\n"
                "   decoder; soft one-shot MMSE wins the coded contest —\n"
                "   the V-BLAST gain is an uncoded-SER gain)\n");
  }

  bu::section("EDCA priorities (saturated: 1 voice + 1 video + 4 best effort)");
  {
    Rng r(77);
    mac::EdcaConfig cfg;
    cfg.duration_s = 3.0;
    std::vector<mac::EdcaStation> stations = {
        {mac::AccessCategory::kVoice, 200},
        {mac::AccessCategory::kVideo, 1000},
        {mac::AccessCategory::kBestEffort, 1000},
        {mac::AccessCategory::kBestEffort, 1000},
        {mac::AccessCategory::kBestEffort, 1000},
        {mac::AccessCategory::kBestEffort, 1000},
    };
    const auto res = mac::simulate_edca(cfg, stations, r);
    const char* names[] = {"voice", "video", "best effort", "best effort",
                           "best effort", "best effort"};
    std::printf("%14s %14s %16s\n", "category", "throughput", "access delay");
    for (std::size_t i = 0; i < stations.size(); ++i) {
      std::printf("%14s %11.2f M %13.2f ms\n", names[i],
                  res.stations[i].throughput_mbps,
                  res.stations[i].mean_access_delay_s * 1e3);
    }
  }

  bu::section("LDPC min-sum normalization (BER at Eb/N0 = 2.2 dB, n=648)");
  {
    const phy::LdpcCode code(648, 324, 11);
    const double sigma = std::sqrt(1.0 / db_to_lin(2.2));
    for (const double alpha : {1.0, 0.9, 0.8, 0.7}) {
      std::size_t err = 0;
      std::size_t total = 0;
      for (int b = 0; b < 50; ++b) {
        const Bits info = rng.random_bits(324);
        const Bits cw = code.encode(info);
        RVec llrs(648);
        for (std::size_t i = 0; i < 648; ++i) {
          const double rx = (cw[i] ? -1.0 : 1.0) + sigma * rng.gaussian();
          llrs[i] = 2.0 * rx / (sigma * sigma);
        }
        err += hamming_distance(code.decode(llrs, 40, alpha).info, info);
        total += 324;
      }
      std::printf("  alpha=%.1f : BER %.5f\n", alpha,
                  static_cast<double>(err) / total);
    }
  }

  bu::section("A-MPDU depth at 300 Mbps PHY (saturated single station)");
  {
    std::printf("%12s %16s %14s\n", "aggregation", "goodput(Mbps)",
                "MAC efficiency");
    std::vector<double> depths;
    std::vector<double> goodputs;
    for (const std::size_t frames : {1u, 4u, 16u, 64u}) {
      mac::DcfConfig cfg;
      cfg.generation = mac::PhyGeneration::kHt;
      cfg.data_rate_mbps = 300.0;
      cfg.n_ss = 2;
      cfg.short_gi = true;
      cfg.ampdu_frames = frames;
      cfg.duration_s = 2.0;
      // Representative --chrome-trace timeline: the deepest-aggregation
      // run, where A-MPDU bursts dominate the air lane.
      if (frames == 64u) cfg.trace = bu::chrome_trace();
      const auto r = mac::simulate_dcf(cfg, rng);
      depths.push_back(static_cast<double>(frames));
      goodputs.push_back(r.throughput_mbps);
      std::printf("%12zu %16.1f %13.0f%%\n", frames, r.throughput_mbps,
                  100.0 * r.throughput_mbps / 300.0);
    }
    bu::series("goodput_vs_ampdu_depth", "frames", depths, "mbps", goodputs);
  }

  std::printf("\n(Each winning choice above is what the main benches use: "
              "soft decisions, MMSE, alpha=0.8, deep aggregation for 11n.)\n");
  return 0;
}

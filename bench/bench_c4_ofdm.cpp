// C4 — 802.11a/g OFDM: 54 Mbps, 2.7 bps/Hz, rate ladder over SNR.
//
// Paper: "In the 802.11a standard, OFDM was adopted as the means for
// achieving a wideband spectrally efficient modulation. A maximum data
// rate of 54 Mbps yielded a spectral efficiency of 2.7 bps/Hz,
// representing yet again an approximately fivefold increase over the
// previous standard."
#include <cmath>
#include <vector>

#include "bench_util.h"
#include "core/wlan.h"
#include "dsp/simd.h"
#include "dsp/simd_int.h"

int main(int argc, char** argv) {
  using namespace wlan;
  namespace bu = benchutil;
  bu::args(argc, argv);

  bu::title("C4: 802.11a/g OFDM rate ladder",
            "eight MCS from 6 to 54 Mbps; 54 Mbps / 20 MHz = 2.7 bps/Hz, "
            "~5x the CCK generation");

  Rng rng(4);
  const std::size_t psdu = 500;
  const std::size_t packets = 40;
  // --batch: same experiment through the trial-batched runner (bitwise
  // identical series, faster wall). --quantized additionally re-runs
  // every cell on the int16 decoders from a paired seed and reports the
  // worst PER divergence (the bench_diff gate metric).
  const std::size_t batch = bu::batch_lanes();
  const bool quant = batch != 0 && bu::quantized();
  // The int16 kernels vectorize when the lane count is a multiple of the
  // int16 SIMD width, and their output is deterministic across lane
  // counts — so the quantized re-run widens to the next multiple (its
  // whole point is running more lanes per vector than the double path).
  const std::size_t qlanes =
      std::min<std::size_t>(16, ((batch + dsp::simd::kI16Width - 1) /
                                 dsp::simd::kI16Width) *
                                    dsp::simd::kI16Width);
  double quant_delta_max = 0.0;

  std::vector<double> snrs;
  for (double s = 2.0; s <= 26.0; s += 2.0) snrs.push_back(s);

  bu::section("PER vs SNR for every MCS (AWGN, 500-byte PSDUs)");
  std::printf("%9s", "SNR(dB)");
  for (const phy::OfdmMcs mcs : phy::kAllOfdmMcs) {
    std::printf(" %7.0fM", phy::ofdm_mcs_info(mcs).data_rate_mbps);
  }
  std::printf("\n");

  std::vector<std::vector<double>> per(phy::kAllOfdmMcs.size());
  for (const double snr : snrs) {
    std::printf("%9.1f", snr);
    for (std::size_t m = 0; m < phy::kAllOfdmMcs.size(); ++m) {
      LinkResult r;
      if (batch) {
        Rng qrng = rng;  // paired seed for the quantized re-run
        r = run_ofdm_link_batched(phy::kAllOfdmMcs[m], psdu, packets, snr,
                                  rng, {batch, false});
        if (quant) {
          const LinkResult q = run_ofdm_link_batched(
              phy::kAllOfdmMcs[m], psdu, packets, snr, qrng, {qlanes, true});
          quant_delta_max =
              std::max(quant_delta_max, std::abs(q.per() - r.per()));
        }
      } else {
        r = run_ofdm_link(phy::kAllOfdmMcs[m], psdu, packets, snr, rng);
      }
      per[m].push_back(r.per());
      std::printf(" %8.2f", r.per());
    }
    std::printf("\n");
  }

  bu::section("goodput envelope (best MCS per SNR) — the rate-adaptation curve");
  std::printf("%9s %14s %10s\n", "SNR(dB)", "goodput(Mbps)", "best MCS");
  double top_goodput = 0.0;
  for (std::size_t s = 0; s < snrs.size(); ++s) {
    double best = 0.0;
    double best_rate = 0.0;
    for (std::size_t m = 0; m < phy::kAllOfdmMcs.size(); ++m) {
      const double rate = phy::ofdm_mcs_info(phy::kAllOfdmMcs[m]).data_rate_mbps;
      const double good = rate * (1.0 - per[m][s]);
      if (good > best) {
        best = good;
        best_rate = rate;
      }
    }
    top_goodput = std::max(top_goodput, best);
    std::printf("%9.1f %14.1f %9.0fM\n", snrs[s], best, best_rate);
  }

  for (std::size_t m = 0; m < phy::kAllOfdmMcs.size(); ++m) {
    const double rate = phy::ofdm_mcs_info(phy::kAllOfdmMcs[m]).data_rate_mbps;
    bu::series("per_vs_snr_mcs_" + std::to_string(static_cast<int>(rate)) + "m",
               "snr_db", snrs, "per", per[m]);
  }
  bu::metric("peak_goodput_mbps", top_goodput);
  if (batch) bu::metric("batch_lanes", static_cast<double>(batch));
  if (quant) {
    bu::metric("quantized_per_delta_max", quant_delta_max);
    bu::metric("quantized_lane_multiple",
               static_cast<double>(dsp::simd::kI16Width) /
                   static_cast<double>(dsp::simd::kWidth));
    std::printf("\n  quantized int16 path: worst PER delta %.3f, "
                "%zu int16 lanes vs %zu double lanes\n",
                quant_delta_max, dsp::simd::kI16Width, dsp::simd::kWidth);
  }

  // Sensitivity ladder: each step up the MCS list needs more SNR.
  bu::section("SNR required for PER <= 10% per MCS");
  std::vector<double> req;
  bool ordered = true;
  for (std::size_t m = 0; m < phy::kAllOfdmMcs.size(); ++m) {
    const double snr_req = bu::crossing(snrs, per[m], 0.10);
    req.push_back(snr_req);
    std::printf("  %4.0f Mbps: %6.1f dB\n",
                phy::ofdm_mcs_info(phy::kAllOfdmMcs[m]).data_rate_mbps, snr_req);
  }
  for (std::size_t m = 1; m < req.size(); ++m) {
    // 9 Mbps (BPSK 3/4) and 12 Mbps (QPSK 1/2) are famously close; allow
    // small inversions there, require broad monotonicity elsewhere.
    if (std::isnan(req[m]) || req[m] + 1.0 < req[m - 1]) ordered = false;
  }

  const bool reaches_54 = top_goodput > 50.0;
  bu::verdict(ordered && reaches_54,
              "rate ladder spans 6..54 Mbps with ordered sensitivities; "
              "peak goodput %.1f Mbps = %.2f bps/Hz in 20 MHz",
              top_goodput, top_goodput / 20.0);
  return ordered && reaches_54 ? 0 : 1;
}

// C4 — 802.11a/g OFDM: 54 Mbps, 2.7 bps/Hz, rate ladder over SNR.
//
// Paper: "In the 802.11a standard, OFDM was adopted as the means for
// achieving a wideband spectrally efficient modulation. A maximum data
// rate of 54 Mbps yielded a spectral efficiency of 2.7 bps/Hz,
// representing yet again an approximately fivefold increase over the
// previous standard."
#include <vector>

#include "bench_util.h"
#include "core/wlan.h"

int main(int argc, char** argv) {
  using namespace wlan;
  namespace bu = benchutil;
  bu::args(argc, argv);

  bu::title("C4: 802.11a/g OFDM rate ladder",
            "eight MCS from 6 to 54 Mbps; 54 Mbps / 20 MHz = 2.7 bps/Hz, "
            "~5x the CCK generation");

  Rng rng(4);
  const std::size_t psdu = 500;
  const std::size_t packets = 40;

  std::vector<double> snrs;
  for (double s = 2.0; s <= 26.0; s += 2.0) snrs.push_back(s);

  bu::section("PER vs SNR for every MCS (AWGN, 500-byte PSDUs)");
  std::printf("%9s", "SNR(dB)");
  for (const phy::OfdmMcs mcs : phy::kAllOfdmMcs) {
    std::printf(" %7.0fM", phy::ofdm_mcs_info(mcs).data_rate_mbps);
  }
  std::printf("\n");

  std::vector<std::vector<double>> per(phy::kAllOfdmMcs.size());
  for (const double snr : snrs) {
    std::printf("%9.1f", snr);
    for (std::size_t m = 0; m < phy::kAllOfdmMcs.size(); ++m) {
      const LinkResult r =
          run_ofdm_link(phy::kAllOfdmMcs[m], psdu, packets, snr, rng);
      per[m].push_back(r.per());
      std::printf(" %8.2f", r.per());
    }
    std::printf("\n");
  }

  bu::section("goodput envelope (best MCS per SNR) — the rate-adaptation curve");
  std::printf("%9s %14s %10s\n", "SNR(dB)", "goodput(Mbps)", "best MCS");
  double top_goodput = 0.0;
  for (std::size_t s = 0; s < snrs.size(); ++s) {
    double best = 0.0;
    double best_rate = 0.0;
    for (std::size_t m = 0; m < phy::kAllOfdmMcs.size(); ++m) {
      const double rate = phy::ofdm_mcs_info(phy::kAllOfdmMcs[m]).data_rate_mbps;
      const double good = rate * (1.0 - per[m][s]);
      if (good > best) {
        best = good;
        best_rate = rate;
      }
    }
    top_goodput = std::max(top_goodput, best);
    std::printf("%9.1f %14.1f %9.0fM\n", snrs[s], best, best_rate);
  }

  for (std::size_t m = 0; m < phy::kAllOfdmMcs.size(); ++m) {
    const double rate = phy::ofdm_mcs_info(phy::kAllOfdmMcs[m]).data_rate_mbps;
    bu::series("per_vs_snr_mcs_" + std::to_string(static_cast<int>(rate)) + "m",
               "snr_db", snrs, "per", per[m]);
  }
  bu::metric("peak_goodput_mbps", top_goodput);

  // Sensitivity ladder: each step up the MCS list needs more SNR.
  bu::section("SNR required for PER <= 10% per MCS");
  std::vector<double> req;
  bool ordered = true;
  for (std::size_t m = 0; m < phy::kAllOfdmMcs.size(); ++m) {
    const double snr_req = bu::crossing(snrs, per[m], 0.10);
    req.push_back(snr_req);
    std::printf("  %4.0f Mbps: %6.1f dB\n",
                phy::ofdm_mcs_info(phy::kAllOfdmMcs[m]).data_rate_mbps, snr_req);
  }
  for (std::size_t m = 1; m < req.size(); ++m) {
    // 9 Mbps (BPSK 3/4) and 12 Mbps (QPSK 1/2) are famously close; allow
    // small inversions there, require broad monotonicity elsewhere.
    if (std::isnan(req[m]) || req[m] + 1.0 < req[m - 1]) ordered = false;
  }

  const bool reaches_54 = top_goodput > 50.0;
  bu::verdict(ordered && reaches_54,
              "rate ladder spans 6..54 Mbps with ordered sensitivities; "
              "peak goodput %.1f Mbps = %.2f bps/Hz in 20 MHz",
              top_goodput, top_goodput / 20.0);
  return ordered && reaches_54 ? 0 : 1;
}

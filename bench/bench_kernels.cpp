// Microbenchmarks of the library's hot kernels (google-benchmark).
//
// These are engineering benchmarks, not paper claims: they size the
// Monte-Carlo budgets the C1..C13 benches can afford.
#include <benchmark/benchmark.h>

#include <numbers>

#include "channel/awgn.h"
#include "channel/mimo.h"
#include "common/rng.h"
#include "core/link.h"
#include "dsp/fft.h"
#include "dsp/simd.h"
#include "linalg/decompose.h"
#include "obs/perf.h"
#include "obs/timer.h"
#include "phy/cck.h"
#include "phy/convolutional.h"
#include "phy/ldpc.h"
#include "phy/modulation.h"
#include "phy/ofdm.h"
#include "phy/workspace.h"

namespace {

using namespace wlan;

void BM_Fft(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  CVec x(n);
  for (auto& v : x) v = rng.cgaussian(1.0);
  for (auto _ : state) {
    CVec y = x;
    dsp::fft_inplace(y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Fft)->Arg(64)->Arg(128)->Arg(1024);

// The pre-plan radix-2 kernel: bit reversal computed per call and
// twiddles accumulated incrementally (w *= w_len). Kept here as the
// reference point for the FftPlan speedup (plans precompute both).
// Wrapped in the same kernel timer the production path carries, so the
// comparison matches what the old fft_inplace actually cost.
void naive_fft(CVec& x) {
  const obs::ScopedTimer timer(obs::kernel_histogram(obs::Kernel::kFft));
  const std::size_t n = x.size();
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j |= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = -2.0 * std::numbers::pi / static_cast<double>(len);
    const Cplx wlen = std::polar(1.0, ang);
    for (std::size_t i = 0; i < n; i += len) {
      Cplx w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Cplx u = x[i + k];
        const Cplx v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

void BM_FftNaive(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  CVec x(n);
  for (auto& v : x) v = rng.cgaussian(1.0);
  for (auto _ : state) {
    CVec y = x;
    naive_fft(y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FftNaive)->Arg(64)->Arg(128)->Arg(1024);

void BM_ViterbiDecode(benchmark::State& state) {
  const std::size_t n_info = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  Bits info = rng.random_bits(n_info);
  for (std::size_t i = n_info - 6; i < n_info; ++i) info[i] = 0;
  const Bits coded = phy::convolutional_encode(info);
  RVec llrs(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    llrs[i] = coded[i] ? -1.0 : 1.0;
  }
  for (auto _ : state) {
    Bits out = phy::viterbi_decode(llrs, true);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n_info));
}
BENCHMARK(BM_ViterbiDecode)->Arg(1000)->Arg(8000);

void BM_LdpcDecode(benchmark::State& state) {
  const phy::LdpcCode code(648, 324, 11);
  Rng rng(3);
  const Bits info = rng.random_bits(324);
  const Bits cw = code.encode(info);
  RVec llrs(648);
  const double sigma = 0.8;
  for (std::size_t i = 0; i < 648; ++i) {
    llrs[i] = 2.0 * ((cw[i] ? -1.0 : 1.0) + sigma * rng.gaussian()) /
              (sigma * sigma);
  }
  std::int64_t iters = 0;
  for (auto _ : state) {
    auto out = code.decode(llrs, 40);
    iters += out.iterations;
    benchmark::DoNotOptimize(out.info.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 324);
  // Early-exit payoff: iterations actually spent vs the max budget of 40.
  state.counters["iters_per_block"] = benchmark::Counter(
      static_cast<double>(iters) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_LdpcDecode);

// Clean channel decisions: the pre-loop syndrome check exits after 0
// iterations, so this measures the floor cost of a decode call (one
// syndrome pass) — the common case well above the waterfall.
void BM_LdpcDecodeClean(benchmark::State& state) {
  const phy::LdpcCode code(648, 324, 11);
  Rng rng(3);
  const Bits info = rng.random_bits(324);
  const Bits cw = code.encode(info);
  RVec llrs(648);
  for (std::size_t i = 0; i < 648; ++i) llrs[i] = cw[i] ? -4.0 : 4.0;
  std::int64_t iters = 0;
  for (auto _ : state) {
    auto out = code.decode(llrs, 40);
    iters += out.iterations;
    benchmark::DoNotOptimize(out.info.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 324);
  state.counters["iters_per_block"] = benchmark::Counter(
      static_cast<double>(iters) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_LdpcDecodeClean);

void BM_CckDemodulate(benchmark::State& state) {
  const phy::CckModem modem(phy::CckRate::k11Mbps);
  Rng rng(4);
  const Bits bits = rng.random_bits(8 * 200);
  const CVec chips = modem.modulate(bits);
  for (auto _ : state) {
    Bits out = modem.demodulate(chips);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bits.size()));
}
BENCHMARK(BM_CckDemodulate);

void BM_MmseDetectorSetup(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  const auto h = channel::iid_rayleigh_matrix(rng, n, n);
  for (auto _ : state) {
    linalg::CMatrix gram = h.hermitian() * h;
    for (std::size_t i = 0; i < n; ++i) gram(i, i) += 0.1;
    linalg::CMatrix g = linalg::inverse(gram) * h.hermitian();
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_MmseDetectorSetup)->Arg(2)->Arg(4);

void BM_Svd4x4(benchmark::State& state) {
  Rng rng(6);
  const auto h = channel::iid_rayleigh_matrix(rng, 4, 4);
  for (auto _ : state) {
    auto dec = linalg::svd(h);
    benchmark::DoNotOptimize(dec.s.data());
  }
}
BENCHMARK(BM_Svd4x4);

void BM_OfdmPacket54(benchmark::State& state) {
  const phy::OfdmPhy phy(phy::OfdmMcs::k54Mbps);
  Rng rng(7);
  const Bytes psdu = rng.random_bytes(1000);
  for (auto _ : state) {
    CVec wave = phy.transmit(psdu);
    Bytes out = phy.receive(wave, psdu.size(), 1e-6);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8000);
}
BENCHMARK(BM_OfdmPacket54);

void BM_HtPacket2x2(benchmark::State& state) {
  phy::HtConfig cfg;
  cfg.mcs = 15;
  const phy::HtPhy phy(cfg);
  Rng rng(8);
  const Bytes psdu = rng.random_bytes(1000);
  const auto tones = phy.draw_channel(rng, channel::DelayProfile::kOffice);
  for (auto _ : state) {
    Bytes out = phy.simulate_link(psdu, tones, 40.0, rng);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8000);
}
BENCHMARK(BM_HtPacket2x2);

// Toggles the plan-level SIMD dispatch for one benchmark run and restores
// the previous setting on destruction. Arg(0) = scalar, Arg(1) = vector
// (a no-op downgrade to scalar on non-SIMD builds).
class ScopedSimd {
 public:
  explicit ScopedSimd(bool enabled) : prev_(dsp::simd::vector_enabled()) {
    dsp::simd::set_vector_enabled(enabled);
  }
  ~ScopedSimd() { dsp::simd::set_vector_enabled(prev_); }

 private:
  bool prev_;
};

// Max-log LLR demapper over one OFDM symbol of 64-QAM (48 tones, 288
// LLRs) with per-tone noise variances — the lane-per-subcarrier SIMD
// kernel vs its scalar reference.
void BM_DemapLlr(benchmark::State& state) {
  const ScopedSimd simd(state.range(0) != 0);
  Rng rng(9);
  CVec symbols(48);
  RVec nv(48);
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    symbols[i] = rng.cgaussian(1.0);
    nv[i] = 0.05 + 0.01 * static_cast<double>(i % 7);
  }
  RVec out(48 * 6);
  for (auto _ : state) {
    phy::demodulate_llr_to(symbols, phy::Modulation::kQam64, nv, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(out.size()));
}
BENCHMARK(BM_DemapLlr)->Arg(0)->Arg(1);

// Viterbi branch-metric + ACS over the 64-state K=7 trellis — the
// sign-table SIMD kernel vs the scalar reference.
void BM_ViterbiAcs(benchmark::State& state) {
  const ScopedSimd simd(state.range(0) != 0);
  const std::size_t n_info = 1000;
  Rng rng(2);
  Bits info = rng.random_bits(n_info);
  for (std::size_t i = n_info - 6; i < n_info; ++i) info[i] = 0;
  const Bits coded = phy::convolutional_encode(info);
  RVec llrs(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    llrs[i] = coded[i] ? -1.0 : 1.0;
  }
  phy::Workspace& ws = phy::tls_workspace();
  Bits out;
  for (auto _ : state) {
    phy::viterbi_decode_into(llrs, true, out, ws);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n_info));
}
BENCHMARK(BM_ViterbiAcs)->Arg(0)->Arg(1);

// Trial-batched Viterbi over a lane-major LLR block — `lanes` trials
// decoded in SIMD lockstep. Every lane carries the identical noisy
// block so the lane-count scaling isolates the kernel (per-lane
// difficulty variance is the macro benches' business); items processed
// counts info bits across all lanes, so items/s compares directly
// against BM_ViterbiDecode / BM_ViterbiAcs.
void BM_ViterbiBatch(benchmark::State& state) {
  const std::size_t lanes = static_cast<std::size_t>(state.range(0));
  const std::size_t n_info = 1000;
  Rng rng(2);
  Bits info = rng.random_bits(n_info);
  for (std::size_t i = n_info - 6; i < n_info; ++i) info[i] = 0;
  const Bits coded = phy::convolutional_encode(info);
  RVec llrs_soa(coded.size() * lanes);
  Rng noise(21);
  for (std::size_t i = 0; i < coded.size(); ++i) {
    const double v = (coded[i] ? -1.0 : 1.0) + 0.5 * noise.gaussian();
    for (std::size_t l = 0; l < lanes; ++l) llrs_soa[i * lanes + l] = v;
  }
  phy::Workspace& ws = phy::tls_workspace();
  Bits out_soa;
  for (auto _ : state) {
    phy::viterbi_decode_batch_into(llrs_soa, lanes, true, out_soa, ws);
    benchmark::DoNotOptimize(out_soa.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n_info * lanes));
}
BENCHMARK(BM_ViterbiBatch)->Arg(1)->Arg(8)->Arg(16);

// Quantized int16 batched Viterbi — the saturating ACS fast path. Not
// bitwise against BM_ViterbiBatch (int8-scaled metrics); throughput is
// the point: more lanes per vector than the double path.
void BM_ViterbiBatchI16(benchmark::State& state) {
  const std::size_t lanes = static_cast<std::size_t>(state.range(0));
  const std::size_t n_info = 1000;
  Rng rng(2);
  Bits info = rng.random_bits(n_info);
  for (std::size_t i = n_info - 6; i < n_info; ++i) info[i] = 0;
  const Bits coded = phy::convolutional_encode(info);
  RVec llrs_soa(coded.size() * lanes);
  Rng noise(21);
  for (std::size_t i = 0; i < coded.size(); ++i) {
    const double v = (coded[i] ? -1.0 : 1.0) + 0.5 * noise.gaussian();
    for (std::size_t l = 0; l < lanes; ++l) llrs_soa[i * lanes + l] = v;
  }
  phy::Workspace& ws = phy::tls_workspace();
  Bits out_soa;
  for (auto _ : state) {
    phy::viterbi_decode_batch_i16_into(llrs_soa, lanes, true, 16.0, out_soa,
                                       ws);
    benchmark::DoNotOptimize(out_soa.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n_info * lanes));
}
BENCHMARK(BM_ViterbiBatchI16)->Arg(8)->Arg(16);

// Layered min-sum LDPC decode at a noisy working point (several BP
// iterations per block) — vectorized check-node update vs scalar. The
// rate-5/6 code's wide check rows (degree 18) are where the lane-per-
// edge path engages; low-rate codes (degree ~6) dispatch to the
// branch-free scalar loop on both settings, so /0 and /1 would tie.
void BM_LdpcMinSum(benchmark::State& state) {
  const ScopedSimd simd(state.range(0) != 0);
  const phy::LdpcCode code(648, 540, 11);
  Rng rng(3);
  const Bits info = rng.random_bits(540);
  const Bits cw = code.encode(info);
  RVec llrs(648);
  const double sigma = 0.55;
  for (std::size_t i = 0; i < 648; ++i) {
    llrs[i] = 2.0 * ((cw[i] ? -1.0 : 1.0) + sigma * rng.gaussian()) /
              (sigma * sigma);
  }
  phy::Workspace& ws = phy::tls_workspace();
  phy::LdpcCode::DecodeResult res;
  std::int64_t iters = 0;
  for (auto _ : state) {
    code.decode_into(llrs, 40, 0.8, res, ws);
    iters += res.iterations;
    benchmark::DoNotOptimize(res.info.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 540);
  state.counters["iters_per_block"] = benchmark::Counter(
      static_cast<double>(iters) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_LdpcMinSum)->Arg(0)->Arg(1);

// Trial-batched layered min-sum at the same working point — `lanes`
// blocks in SIMD lockstep, every lane the identical noisy block (so
// the scaling isolates the kernel, not per-block iteration variance).
// Bitwise identical per lane to BM_LdpcMinSum's decode_into; items/s
// across lanes is the comparison.
void BM_LdpcMinSumBatch(benchmark::State& state) {
  const std::size_t lanes = static_cast<std::size_t>(state.range(0));
  const phy::LdpcCode code(648, 540, 11);
  Rng rng(3);
  const Bits info = rng.random_bits(540);
  const Bits cw = code.encode(info);
  RVec llrs_soa(648 * lanes);
  const double sigma = 0.55;
  for (std::size_t i = 0; i < 648; ++i) {
    const double v = 2.0 * ((cw[i] ? -1.0 : 1.0) + sigma * rng.gaussian()) /
                     (sigma * sigma);
    for (std::size_t l = 0; l < lanes; ++l) llrs_soa[i * lanes + l] = v;
  }
  phy::Workspace& ws = phy::tls_workspace();
  std::vector<phy::LdpcCode::DecodeResult> res(lanes);
  for (auto _ : state) {
    code.decode_batch_into(llrs_soa, lanes, 40, 0.8, res, ws);
    benchmark::DoNotOptimize(res.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(540 * lanes));
}
BENCHMARK(BM_LdpcMinSumBatch)->Arg(1)->Arg(8)->Arg(16);

// Quantized int16 batched min-sum — the saturating fast path. Not
// bitwise against the double path (PER-delta gated in bench_diff).
void BM_LdpcMinSumBatchI16(benchmark::State& state) {
  const std::size_t lanes = static_cast<std::size_t>(state.range(0));
  const phy::LdpcCode code(648, 540, 11);
  Rng rng(3);
  const Bits info = rng.random_bits(540);
  const Bits cw = code.encode(info);
  RVec llrs_soa(648 * lanes);
  const double sigma = 0.55;
  for (std::size_t i = 0; i < 648; ++i) {
    const double v = 2.0 * ((cw[i] ? -1.0 : 1.0) + sigma * rng.gaussian()) /
                     (sigma * sigma);
    for (std::size_t l = 0; l < lanes; ++l) llrs_soa[i * lanes + l] = v;
  }
  phy::Workspace& ws = phy::tls_workspace();
  std::vector<phy::LdpcCode::DecodeResult> res(lanes);
  for (auto _ : state) {
    code.decode_batch_i16_into(llrs_soa, lanes, 40, 0.8, 4.0, res, ws);
    benchmark::DoNotOptimize(res.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(540 * lanes));
}
BENCHMARK(BM_LdpcMinSumBatchI16)->Arg(8)->Arg(16);

// Full OFDM TX -> AWGN -> RX round trip through the leased-workspace
// API — the zero-steady-state-allocation path the Monte-Carlo trial
// bodies use. ws_bytes reports the arena's retained capacity.
void BM_OfdmRoundTripWorkspace(benchmark::State& state) {
  const phy::OfdmPhy phy(phy::OfdmMcs::k54Mbps);
  Rng rng(7);
  phy::Workspace& ws = phy::tls_workspace();
  auto psdu = ws.bits(1000);
  rng.fill_bytes(*psdu);
  CVec wave;
  Bytes out;
  for (auto _ : state) {
    phy.transmit_into(*psdu, wave, ws);
    channel::add_awgn(wave, rng, 1e-6);
    phy.receive_into(wave, psdu->size(), 1e-6, out, ws);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8000);
  state.counters["ws_bytes"] =
      benchmark::Counter(static_cast<double>(ws.capacity_bytes()));
}
BENCHMARK(BM_OfdmRoundTripWorkspace);

// Observability overhead floors. Disabled = the cost every kernel call
// pays when profiling is off (one thread-local load + branch for the
// span; a null histogram handle for the timer); enabled = the full
// enter/record/exit path. These bound what instrumenting a hot loop
// costs before any kernel work happens.
void BM_ScopedTimerDisabled(benchmark::State& state) {
  obs::disable_kernel_profiling();
  for (auto _ : state) {
    const obs::ScopedTimer timer(obs::kernel_histogram(obs::Kernel::kFft));
    benchmark::DoNotOptimize(&timer);
  }
}
BENCHMARK(BM_ScopedTimerDisabled);

void BM_ScopedTimerEnabled(benchmark::State& state) {
  obs::Registry registry;
  obs::enable_kernel_profiling(registry);
  for (auto _ : state) {
    const obs::ScopedTimer timer(obs::kernel_histogram(obs::Kernel::kFft));
    benchmark::DoNotOptimize(&timer);
  }
  obs::disable_kernel_profiling();
}
BENCHMARK(BM_ScopedTimerEnabled);

void BM_ScopedSpanDisabled(benchmark::State& state) {
  obs::perf::disable_span_profiling();
  for (auto _ : state) {
    const obs::perf::ScopedSpan span("overhead");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_ScopedSpanDisabled);

void BM_ScopedSpanEnabled(benchmark::State& state) {
  obs::perf::SpanProfile profile;
  obs::perf::enable_span_profiling(profile);
  for (auto _ : state) {
    const obs::perf::ScopedSpan span("overhead");
    benchmark::DoNotOptimize(&span);
  }
  obs::perf::disable_span_profiling();
}
BENCHMARK(BM_ScopedSpanEnabled);

}  // namespace

BENCHMARK_MAIN();

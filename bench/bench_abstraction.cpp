// EXT-ABS — The link-to-system abstraction predicts waveform PER.
//
// The network simulator cannot afford milliseconds of waveform DSP per
// frame; it runs on EESM effective SNR + calibrated AWGN curves instead
// (core/abstraction.h, net/errormodel.h). This bench validates that
// shortcut against ground truth: for every 802.11a/g MCS and two
// TGn-style delay profiles, the realization-averaged predicted PER must
// track the measured waveform PER (fresh TDL per packet, LTF channel
// estimation at the receiver) across the waterfall — and quantifies how
// many orders of magnitude cheaper the prediction is.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/wlan.h"
#include "net/errormodel.h"

int main(int argc, char** argv) {
  using namespace wlan;
  namespace bu = benchutil;
  bu::args(argc, argv);

  bu::title("EXT-ABS: EESM/PER abstraction vs waveform simulation",
            "effective-SNR mapping onto calibrated AWGN curves predicts the "
            "waveform simulator's PER across the full OFDM MCS ladder and "
            "multipath severities, at a tiny fraction of the cost");

  constexpr double kAwgnMid[8] = {1.2,  3.1,  3.1,  6.8,
                                  9.2, 12.9, 17.0, 18.6};
  constexpr std::size_t kPackets = 250;
  constexpr std::size_t kRealizations = 300;
  constexpr std::size_t kPsdu = 500;

  double max_abs_err = 0.0;
  double sum_sq_err = 0.0;
  std::size_t points = 0;

  for (const auto profile : {channel::DelayProfile::kResidential,
                             channel::DelayProfile::kOffice}) {
    const char* pname =
        profile == channel::DelayProfile::kResidential ? "residential"
                                                       : "office";
    bu::section(pname);
    std::printf("%6s %9s %11s %11s %9s\n", "mcs", "snr(dB)", "predicted",
                "measured", "|err|");
    std::vector<double> xs;
    std::vector<double> pred_series;
    std::vector<double> meas_series;
    for (std::size_t m = 0; m < 8; ++m) {
      const auto mcs = static_cast<phy::OfdmMcs>(m);
      for (const double off : {3.0, 6.0}) {
        const double snr = kAwgnMid[m] + off;
        Rng rng(7);
        double predicted = 0.0;
        for (std::size_t r = 0; r < kRealizations; ++r) {
          const channel::Tdl tdl = channel::make_tdl(rng, profile, 20e6);
          predicted += predict_ofdm_per(mcs, tdl, snr, kPsdu);
        }
        predicted /= static_cast<double>(kRealizations);
        Rng link_rng(1000 + m);
        const LinkResult meas = run_ofdm_link(mcs, kPsdu, kPackets, snr,
                                              link_rng,
                                              ChannelSpec::tdl(profile));
        const double err = std::abs(predicted - meas.per());
        max_abs_err = std::max(max_abs_err, err);
        sum_sq_err += err * err;
        ++points;
        xs.push_back(static_cast<double>(m) + off / 10.0);
        pred_series.push_back(predicted);
        meas_series.push_back(meas.per());
        std::printf("%6zu %9.1f %11.3f %11.3f %9.3f\n", m, snr, predicted,
                    meas.per(), err);
      }
    }
    char name[64];
    std::snprintf(name, sizeof name, "predicted_per_%s", pname);
    bu::series(name, "mcs_plus_offset", xs, "per", pred_series);
    std::snprintf(name, sizeof name, "measured_per_%s", pname);
    bu::series(name, "mcs_plus_offset", xs, "per", meas_series);
  }
  const double rms_err = std::sqrt(sum_sq_err / static_cast<double>(points));

  // HT spot check (20 MHz, long GI, BCC): same machinery, 52-tone grid.
  bu::section("HT spot check (office profile)");
  constexpr double kHtMid[8] = {-0.45, 2.6, 5.1, 7.9, 11.4, 15.1, 16.6, 18.0};
  double ht_max_err = 0.0;
  for (const unsigned m : {0u, 3u, 6u}) {
    const double snr = kHtMid[m] + 5.0;
    Rng rng(7);
    double predicted = 0.0;
    for (std::size_t r = 0; r < kRealizations; ++r) {
      const channel::Tdl tdl =
          channel::make_tdl(rng, channel::DelayProfile::kOffice, 20e6);
      predicted += predict_ht_per(m, tdl, snr, kPsdu);
    }
    predicted /= static_cast<double>(kRealizations);
    phy::HtConfig hc;
    hc.mcs = m;
    Rng link_rng(2000 + m);
    const LinkResult meas = run_ht_link(hc, kPsdu, kPackets, snr, link_rng,
                                        channel::DelayProfile::kOffice);
    const double err = std::abs(predicted - meas.per());
    ht_max_err = std::max(ht_max_err, err);
    std::printf("  mcs %u @ %5.1f dB: predicted %.3f measured %.3f\n", m,
                snr, predicted, meas.per());
  }

  // Cost: a PerTable lookup (the netsim hot path) vs one waveform packet.
  bu::section("cost");
  net::ErrorModelConfig emc;
  emc.model = net::RxModel::kPerModel;
  Rng model_rng(3);
  const net::LinkPerModel model(mac::PhyGeneration::kOfdm, 24.0, 1028, emc,
                                model_rng);
  constexpr std::size_t kLookups = 2'000'000;
  double acc = 0.0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kLookups; ++i) {
    acc += model.per(5.0 + static_cast<double>(i % 400) * 0.06,
                     i % model.realizations());
  }
  const auto t1 = std::chrono::steady_clock::now();
  Rng wf_rng(4);
  run_ofdm_link(phy::OfdmMcs::k24Mbps, kPsdu, 64, 12.0, wf_rng);
  const auto t2 = std::chrono::steady_clock::now();
  const double ns_lookup =
      std::chrono::duration<double, std::nano>(t1 - t0).count() /
      static_cast<double>(kLookups);
  const double us_packet =
      std::chrono::duration<double, std::micro>(t2 - t1).count() / 64.0;
  const double speedup = us_packet * 1e3 / std::max(ns_lookup, 1e-3);
  std::printf("  PER lookup   : %8.1f ns (checksum %.3f)\n", ns_lookup,
              acc / static_cast<double>(kLookups));
  std::printf("  waveform pkt : %8.1f us\n", us_packet);
  std::printf("  ratio        : %8.0fx\n", speedup);

  bu::metric("max_abs_per_error", max_abs_err);
  bu::metric("rms_per_error", rms_err);
  bu::metric("ht_max_abs_per_error", ht_max_err);
  bu::metric("per_lookup_ns", ns_lookup);
  bu::metric("speedup_vs_waveform", speedup);

  const bool ok = max_abs_err < 0.2 && rms_err < 0.1 && ht_max_err < 0.25 &&
                  speedup > 1e3;
  bu::verdict(ok,
              "abstraction tracks the waveform PER (max |err| %.3f, rms "
              "%.3f over %zu OFDM points; HT max %.3f) at %.0fx less cost "
              "per reception decision",
              max_abs_err, rms_err, points, ht_max_err, speedup);
  return ok ? 0 : 1;
}

// Shared helpers for the paper-claim benchmark binaries (C1..C13).
//
// Each bench prints a self-contained report: the claim quoted from the
// paper, the series the experiment produces, and a PASS/SHAPE-note line
// summarizing whether the measured shape matches the claim.
#pragma once

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace wlan::benchutil {

inline void title(const char* id, const char* claim) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s\n", id);
  std::printf("claim: %s\n", claim);
  std::printf("---------------------------------------------------------------"
              "-----------------\n");
}

inline void section(const char* name) { std::printf("\n-- %s --\n", name); }

inline void verdict(bool ok, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::printf("\n[%s] ", ok ? "REPRODUCED" : "MISMATCH");
  std::vprintf(fmt, args);
  std::printf("\n\n");
  va_end(args);
}

/// Linear interpolation of the x where series y crosses `target`
/// (y assumed monotone along x). Returns NaN if no crossing.
inline double crossing(const std::vector<double>& xs,
                       const std::vector<double>& ys, double target) {
  for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
    const bool between = (ys[i] - target) * (ys[i + 1] - target) <= 0.0;
    if (!between || ys[i] == ys[i + 1]) continue;
    const double t = (target - ys[i]) / (ys[i + 1] - ys[i]);
    return xs[i] + t * (xs[i + 1] - xs[i]);
  }
  return std::nan("");
}

}  // namespace wlan::benchutil

// Shared helpers for the paper-claim benchmark binaries (C1..C13).
//
// Each bench prints a self-contained report: the claim quoted from the
// paper, the series the experiment produces, and a PASS/SHAPE-note line
// summarizing whether the measured shape matches the claim.
//
// Machine-readable output: every bench's main() starts with
// `benchutil::args(argc, argv)`. With `--json <path>` the run also
// writes a structured report at exit — claim id, recorded series and
// scalar metrics, verdict, wall-time histograms of the hot kernels
// (FFT, Viterbi, LDPC, fading taps; profiled automatically when --json
// is on), pool telemetry (a "par" section: utilization, lane-busy
// imbalance, steal counters), and the PHY link-quality probes (EVM,
// post-equalizer SNR, |LLR|) for benches that exercise a receive
// chain. scripts/run_benches.sh aggregates these into BENCH_<tag>.json.
//
// `--profile [path]` arms the hierarchical span profiler (obs/perf.h):
// the whole run executes under a root "bench" span, and at exit the
// merged span tree is written as collapsed stacks (flamegraph.pl /
// speedscope) to `path` — default <json>.folded next to the --json
// report, else profile.folded — plus a "spans" array in the JSON and
// nested slices appended to the --chrome-trace document when present.
//
// `--chrome-trace <path>` hands the bench a ChromeTraceSink (via
// `chrome_trace()`); simulator benches pass it to their representative
// run so the timeline can be opened in Perfetto / chrome://tracing.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/analyze/chrome_trace.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/perf.h"
#include "obs/probe.h"
#include "obs/timer.h"
#include "par/pool.h"

namespace wlan::benchutil {

/// One recorded (x, y) curve of the experiment.
struct Series {
  std::string name;
  std::string x_label;
  std::string y_label;
  std::vector<double> x;
  std::vector<double> y;
};

/// Accumulated report state for the running bench (one per process).
struct Report {
  std::string json_path;
  std::string id;          // "C1", "EXT", ... — text before ':' in the title
  std::string title;
  std::string claim;
  std::vector<Series> series;
  std::vector<std::pair<std::string, double>> metrics;
  // Informational values ("info" JSON object): wall-clock speedups,
  // utilization — anything machine-dependent that must NOT be pinned by
  // the bench_diff regression gate, which reads "metrics" only.
  std::vector<std::pair<std::string, double>> info;
  bool has_verdict = false;
  bool ok = false;
  std::string verdict_detail;
  obs::Registry registry;  // kernel-profiling + probe histograms live here
  std::string chrome_trace_path;
  std::unique_ptr<obs::ChromeTraceSink> chrome;  // closed by ~Report
  bool latency = false;    // --latency: frame-lifecycle instrumentation on
  std::size_t batch = 0;   // --batch [n]: trial-batched runners, n lanes
  bool quantized = false;  // --quantized: int16 decoder fast paths
  std::size_t overlap = 0; // --overlap [grid]: one-component border city
  bool profile = false;    // --profile: span profiler armed
  std::string profile_path;       // folded-stack output ("" = derived)
  obs::perf::SpanProfile spans;   // merged span tree (all threads)
  // Root "bench" span covering args() .. write_report(); its total then
  // tiles (nearly) the process wall time in the folded output.
  std::unique_ptr<obs::perf::ScopedSpan> root_span;
  // Per-sink dropped-event counts, recorded via sink_dropped() once a
  // sink's run is over. Nonzero means trace-derived metrics are skewed;
  // run_benches.sh turns any nonzero total into a MISMATCH.
  std::vector<std::pair<std::string, std::uint64_t>> sinks;
  unsigned jobs = 0;       // worker threads used (resolved --jobs value)
  std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
};

inline Report& report() {
  static Report r;
  return r;
}

inline void write_report() {
  Report& r = report();
  // Close the root "bench" span first so it tiles (nearly) the whole
  // wall time, then disarm: nothing below records new spans, and the
  // main thread's collector flushes into r.spans.
  r.root_span.reset();
  if (r.profile) obs::perf::disable_span_profiling();
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - r.start)
                            .count();

  // Folded collapsed-stack export (flamegraph.pl / speedscope).
  std::string folded_path;
  if (r.profile) {
    folded_path = !r.profile_path.empty() ? r.profile_path
                  : !r.json_path.empty()  ? r.json_path + ".folded"
                                          : std::string("profile.folded");
    std::ofstream fout(folded_path);
    if (!fout.is_open()) {
      std::fprintf(stderr, "benchutil: cannot write %s\n",
                   folded_path.c_str());
    } else {
      r.spans.write_folded(fout);
      std::printf("profile: folded stacks -> %s\n", folded_path.c_str());
    }
  }

  // Pool/chunk telemetry, merged into the registry in fixed creation
  // order (par.* counters and gauges). The span profile publishes the
  // same way (span.* counters), keeping snapshots deterministic.
  const par::PoolTelemetry pool = par::default_pool().telemetry();
  const par::ChunkStats chunks = par::chunk_stats();
  const bool telem = par::telemetry_enabled();
  if (telem) par::publish_telemetry(r.registry, pool, chunks, wall_s);
  if (r.profile) r.spans.publish(r.registry);

  // Perfetto appendix: span slices + per-lane busy counters ride along
  // in the chrome trace; close it afterwards so dropped() is final.
  if (r.chrome) {
    if (r.profile) obs::append_span_profile(*r.chrome, r.spans);
    if (telem && !pool.lanes.empty()) {
      std::vector<std::pair<std::string, double>> busy;
      busy.reserve(pool.lanes.size());
      for (std::size_t i = 0; i < pool.lanes.size(); ++i) {
        busy.emplace_back("lane" + std::to_string(i),
                          static_cast<double>(pool.lanes[i].busy_ns) * 1e-9);
      }
      r.chrome->emit_counter(obs::kProfilerPid, "par.lane_busy_s", 0.0, busy);
    }
    r.chrome->close();
    r.sinks.emplace_back("chrome_trace", r.chrome->dropped());
  }

  // Kernel wall-share: total seconds inside each hot kernel per second
  // of wall time, summed across lanes (can exceed 1 with --jobs > 1).
  // New metrics are informational in the regression gate until a
  // baseline refresh pins them.
  if (wall_s > 0.0) {
    for (std::size_t k = 0; k < obs::kKernelCount; ++k) {
      const auto kernel = static_cast<obs::Kernel>(k);
      const obs::Histogram* h =
          r.registry.find_histogram(obs::kernel_metric_name(kernel));
      if (!h || h->count() == 0) continue;
      const char* name = obs::kernel_metric_name(kernel);  // "kernel.<x>"
      r.metrics.emplace_back(std::string("kernel_share.") + (name + 7),
                             h->sum() / wall_s);
    }
  }

  if (r.json_path.empty()) return;
  std::ofstream out(r.json_path);
  if (!out.is_open()) {
    std::fprintf(stderr, "benchutil: cannot write %s\n", r.json_path.c_str());
    return;
  }
  using obs::json_escape;
  using obs::json_number;
  out << "{\"schema\":\"holtwlan-bench-v1\"";
  out << ",\"id\":\"" << json_escape(r.id) << '"';
  out << ",\"title\":\"" << json_escape(r.title) << '"';
  out << ",\"claim\":\"" << json_escape(r.claim) << '"';
  out << ",\"verdict\":\""
      << (r.has_verdict ? (r.ok ? "REPRODUCED" : "MISMATCH") : "NONE") << '"';
  out << ",\"ok\":" << (!r.has_verdict || r.ok ? "true" : "false");
  // Wall time and thread count are top-level fields, NOT metrics: the
  // regression gate pins "metrics" only, and wall time is a property of
  // the machine and --jobs, not of the claim.
  out << ",\"jobs\":" << (r.jobs ? r.jobs : par::default_jobs());
  out << ",\"wall_s\":";
  json_number(out, wall_s);
  out << ",\"detail\":\"" << json_escape(r.verdict_detail) << '"';
  out << ",\"series\":[";
  for (std::size_t s = 0; s < r.series.size(); ++s) {
    const Series& ser = r.series[s];
    if (s) out << ',';
    out << "{\"name\":\"" << json_escape(ser.name) << "\",\"x_label\":\""
        << json_escape(ser.x_label) << "\",\"y_label\":\""
        << json_escape(ser.y_label) << "\",\"x\":[";
    for (std::size_t i = 0; i < ser.x.size(); ++i) {
      if (i) out << ',';
      json_number(out, ser.x[i]);
    }
    out << "],\"y\":[";
    for (std::size_t i = 0; i < ser.y.size(); ++i) {
      if (i) out << ',';
      json_number(out, ser.y[i]);
    }
    out << "]}";
  }
  out << "],\"probes\":[";
  {
    bool first_probe = true;
    for (std::size_t p = 0; p < obs::kProbeCount; ++p) {
      const auto probe = static_cast<obs::Probe>(p);
      const std::vector<obs::Label> label{
          {"chain", obs::probe_chain_label(probe)}};
      const obs::Histogram* h =
          r.registry.find_histogram(obs::probe_metric_name(probe), label);
      if (!h || h->count() == 0) continue;
      if (!first_probe) out << ',';
      first_probe = false;
      out << "{\"name\":\"" << obs::probe_metric_name(probe)
          << "\",\"chain\":\"" << obs::probe_chain_label(probe)
          << "\",\"count\":" << h->count() << ",\"mean\":";
      json_number(out, h->mean());
      out << ",\"p50\":";
      json_number(out, h->percentile(50.0));
      out << ",\"p90\":";
      json_number(out, h->percentile(90.0));
      out << ",\"min\":";
      json_number(out, h->min());
      out << ",\"max\":";
      json_number(out, h->max());
      out << '}';
    }
  }
  out << "],\"sinks\":[";
  {
    std::uint64_t total_dropped = 0;
    for (std::size_t i = 0; i < r.sinks.size(); ++i) {
      if (i) out << ',';
      out << "{\"name\":\"" << json_escape(r.sinks[i].first)
          << "\",\"dropped\":" << r.sinks[i].second << '}';
      total_dropped += r.sinks[i].second;
    }
    out << "],\"sink_dropped\":" << total_dropped;
  }
  out << ",\"metrics\":{";
  for (std::size_t i = 0; i < r.metrics.size(); ++i) {
    if (i) out << ',';
    out << '"' << json_escape(r.metrics[i].first) << "\":";
    json_number(out, r.metrics[i].second);
  }
  out << "},\"info\":{";
  for (std::size_t i = 0; i < r.info.size(); ++i) {
    if (i) out << ',';
    out << '"' << json_escape(r.info[i].first) << "\":";
    json_number(out, r.info[i].second);
  }
  out << "},\"kernels\":[";
  bool first = true;
  for (std::size_t k = 0; k < obs::kKernelCount; ++k) {
    const auto kernel = static_cast<obs::Kernel>(k);
    const obs::Histogram* h =
        r.registry.find_histogram(obs::kernel_metric_name(kernel));
    if (!h || h->count() == 0) continue;
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"" << obs::kernel_metric_name(kernel)
        << "\",\"count\":" << h->count() << ",\"mean_s\":";
    json_number(out, h->mean());
    out << ",\"p50_s\":";
    json_number(out, h->percentile(50.0));
    out << ",\"p90_s\":";
    json_number(out, h->percentile(90.0));
    out << ",\"p99_s\":";
    json_number(out, h->percentile(99.0));
    out << ",\"max_s\":";
    json_number(out, h->max());
    out << '}';
  }
  out << ']';
  if (telem) {
    const par::LaneTelemetry tot = pool.totals();
    out << ",\"par\":{\"lanes\":" << pool.lanes.size()
        << ",\"tasks\":" << tot.tasks
        << ",\"steal_attempts\":" << tot.steal_attempts
        << ",\"steal_successes\":" << tot.steal_successes
        << ",\"help_iterations\":" << tot.help_iterations << ",\"busy_s\":";
    json_number(out, static_cast<double>(tot.busy_ns) * 1e-9);
    out << ",\"park_s\":";
    json_number(out, static_cast<double>(tot.park_ns) * 1e-9);
    out << ",\"utilization\":";
    json_number(out, pool.utilization(wall_s));
    out << ",\"imbalance\":";
    json_number(out, pool.imbalance());
    out << ",\"chunks\":" << chunks.chunks << ",\"chunk_mean_s\":";
    json_number(out, chunks.chunks != 0
                         ? static_cast<double>(chunks.total_ns) * 1e-9 /
                               static_cast<double>(chunks.chunks)
                         : 0.0);
    out << ",\"chunk_max_s\":";
    json_number(out, static_cast<double>(chunks.max_ns) * 1e-9);
    out << ",\"lane_busy_s\":[";
    for (std::size_t i = 0; i < pool.lanes.size(); ++i) {
      if (i) out << ',';
      json_number(out, static_cast<double>(pool.lanes[i].busy_ns) * 1e-9);
    }
    out << "]}";
  }
  if (r.profile) {
    out << ",\"spans\":[";
    bool first_span = true;
    for (const auto& [path, st] : r.spans.spans()) {
      if (!first_span) out << ',';
      first_span = false;
      out << "{\"path\":\"" << json_escape(path)
          << "\",\"calls\":" << st.calls << ",\"total_s\":";
      json_number(out, static_cast<double>(st.total_ns) * 1e-9);
      out << ",\"self_s\":";
      json_number(out, static_cast<double>(st.self_ns()) * 1e-9);
      out << ",\"allocs\":" << st.allocs << '}';
    }
    out << "],\"profile_folded\":\"" << json_escape(folded_path) << '"';
  }
  out << "}\n";
}

/// Parses bench CLI flags: `--json <path>` (write the structured report
/// there; also enables kernel profiling, pool telemetry, and the PHY
/// probes), `--profile [path]` (arm the span profiler and kernel
/// profiling; write collapsed stacks to `path`, default <json>.folded
/// or profile.folded), `--chrome-trace <path>` (arm `chrome_trace()`
/// with a ChromeTraceSink writing there), `--jobs <n>` (worker lanes
/// for the Monte-Carlo pool; default hardware_concurrency, 1 = fully
/// serial; results are identical either way), and `--latency` (arm the
/// frame-lifecycle instrumentation; see latency()). Call first thing in
/// main().
inline void args(int argc, char** argv) {
  Report& r = report();
  r.start = std::chrono::steady_clock::now();
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      r.json_path = argv[++i];
    } else if (a == "--chrome-trace" && i + 1 < argc) {
      r.chrome_trace_path = argv[++i];
    } else if (a == "--jobs" && i + 1 < argc) {
      const long n = std::strtol(argv[++i], nullptr, 10);
      r.jobs = n > 0 ? static_cast<unsigned>(n) : 0;
      par::set_default_jobs(r.jobs);
    } else if (a == "--profile") {
      r.profile = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') r.profile_path = argv[++i];
    } else if (a == "--latency") {
      r.latency = true;
    } else if (a == "--batch") {
      r.batch = 8;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        const long n = std::strtol(argv[++i], nullptr, 10);
        if (n < 1 || n > 16) {
          std::fprintf(stderr, "--batch lanes must be 1..16\n");
          std::exit(2);
        }
        r.batch = static_cast<std::size_t>(n);
      }
    } else if (a == "--quantized") {
      r.quantized = true;
    } else if (a == "--overlap") {
      r.overlap = 32;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        const long n = std::strtol(argv[++i], nullptr, 10);
        if (n < 2) {
          std::fprintf(stderr, "--overlap grid must be >= 2\n");
          std::exit(2);
        }
        r.overlap = static_cast<std::size_t>(n);
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json <path>] [--chrome-trace <path>] "
                   "[--profile [path]] [--latency] [--jobs <n>] "
                   "[--batch [lanes]] [--quantized] [--overlap [grid]]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  // Arm span profiling BEFORE registering write_report: arming creates
  // the process-wide collector arena, and later-registered exit handlers
  // run first — write_report can then still close the root span and
  // drain the main thread's collector.
  if (r.profile) {
    obs::perf::enable_span_profiling(r.spans);
    r.root_span = std::make_unique<obs::perf::ScopedSpan>("bench");
  }
  if (!r.json_path.empty() || r.profile) {
    obs::enable_kernel_profiling(r.registry);
    par::set_telemetry_enabled(true);
    std::atexit(write_report);
  }
  if (!r.json_path.empty()) obs::enable_phy_probes(r.registry);
}

/// True when --latency was given: simulator benches then enable the
/// frame-lifecycle instrumentation (NetworkConfig::lifecycle) on their
/// representative runs and report delay percentiles, the windowed time
/// series, and the invariant-auditor breach count in --json output.
inline bool latency() { return report().latency; }

/// Lane count from --batch (0 = batching off): link benches that support
/// trial batching then switch to the *_batched runners. The batched
/// double path is bitwise identical to the scalar runners, so series and
/// metrics are unchanged — only wall time moves.
inline std::size_t batch_lanes() { return report().batch; }

/// True when --quantized was given: batched benches then also run the
/// int16 decoder fast paths on paired seeds and report the worst PER
/// delta against the double path (the bench_diff gate metric).
inline bool quantized() { return report().quantized; }

/// Building-grid side from --overlap (0 = overlap mode off; bare
/// --overlap means the full 32x32 grid = 102,400 nodes). bench_city
/// then runs ONE connected component through the conservative-time
/// border exchange instead of disjoint per-building shards.
inline std::size_t overlap_grid() { return report().overlap; }

/// Records an informational value into the JSON report's "info" object.
/// Use for wall-clock-derived numbers (speedups, utilization): they are
/// visible to scripts but invisible to the bench_diff regression gate,
/// which pins "metrics" only.
inline void info(std::string name, double value) {
  report().info.emplace_back(std::move(name), value);
}

/// Records a trace sink's final dropped() count under `name` in the
/// --json report ("sinks" array + "sink_dropped" total). Call once per
/// sink after its run completes; the --chrome-trace sink is recorded
/// automatically.
inline void sink_dropped(std::string name, std::uint64_t dropped) {
  report().sinks.emplace_back(std::move(name), dropped);
}

/// The --chrome-trace sink (created on first use), or null when the flag
/// was not given — pass straight into NetworkConfig::trace /
/// DcfConfig::trace for the bench's representative run. The sink closes
/// (balancing spans and finishing the JSON document) at process exit.
inline obs::TraceSink* chrome_trace() {
  Report& r = report();
  if (r.chrome_trace_path.empty()) return nullptr;
  if (!r.chrome) {
    r.chrome = std::make_unique<obs::ChromeTraceSink>(r.chrome_trace_path);
  }
  return r.chrome.get();
}

inline void title(const char* id, const char* claim) {
  Report& r = report();
  r.title = id;
  r.claim = claim;
  const std::string t = id;
  const std::size_t colon = t.find(':');
  r.id = colon == std::string::npos ? t : t.substr(0, colon);
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s\n", id);
  std::printf("claim: %s\n", claim);
  std::printf("---------------------------------------------------------------"
              "-----------------\n");
}

inline void section(const char* name) { std::printf("\n-- %s --\n", name); }

/// Records a curve into the JSON report (printing stays with the bench).
inline void series(std::string name, std::string x_label,
                   std::vector<double> xs, std::string y_label,
                   std::vector<double> ys) {
  report().series.push_back(Series{std::move(name), std::move(x_label),
                                   std::move(y_label), std::move(xs),
                                   std::move(ys)});
}

/// Records one scalar result into the JSON report.
inline void metric(std::string name, double value) {
  report().metrics.emplace_back(std::move(name), value);
}

inline void verdict(bool ok, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char detail[1024];
  std::vsnprintf(detail, sizeof detail, fmt, args);
  va_end(args);
  Report& r = report();
  r.has_verdict = true;
  r.ok = ok;
  r.verdict_detail = detail;
  std::printf("\n[%s] %s\n\n", ok ? "REPRODUCED" : "MISMATCH", detail);
}

/// Linear interpolation of the x where series y crosses `target`
/// (y assumed monotone along x). An exact hit (ys[i] == target, including
/// a flat run at the target or a hit on the first/last sample) returns
/// the first such x. Returns NaN if no crossing.
inline double crossing(const std::vector<double>& xs,
                       const std::vector<double>& ys, double target) {
  for (std::size_t i = 0; i < ys.size(); ++i) {
    if (ys[i] == target) return xs[i];
    if (i + 1 >= ys.size()) break;
    const bool between = (ys[i] - target) * (ys[i + 1] - target) < 0.0;
    if (!between) continue;
    const double t = (target - ys[i]) / (ys[i + 1] - ys[i]);
    return xs[i] + t * (xs[i + 1] - xs[i]);
  }
  return std::nan("");
}

}  // namespace wlan::benchutil

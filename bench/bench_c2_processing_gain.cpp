// C2 — DSSS processing gain against narrowband interference.
//
// Paper: FCC rules "mandating a certain level of robustness to
// interference via spread spectrum techniques" with a "10 dB processing
// gain requirement". Barker-11 spreading provides 10*log10(11) = 10.4 dB:
// a despreading correlator attenuates a narrowband tone by the spreading
// factor. We sweep the signal-to-interference ratio (SIR) at high SNR and
// locate the BER = 1e-2 operating points of the spread and unspread
// systems; their separation is the processing gain.
#include <vector>

#include "bench_util.h"
#include "core/wlan.h"

int main(int argc, char** argv) {
  using namespace wlan;
  namespace bu = benchutil;
  bu::args(argc, argv);

  bu::title("C2: DSSS processing gain vs narrowband tone jammer",
            "Barker-11 spreading buys ~10.4 dB of tolerance to a "
            "narrowband interferer (the FCC's 10 dB mandate)");

  Rng rng(2);
  const std::size_t bits = 1000;
  const std::size_t packets = 25;
  const double tone_freq = 0.217;  // cycles/sample, away from DC

  std::vector<double> sirs;
  for (double sir = -14.0; sir <= 12.0; sir += 2.0) sirs.push_back(sir);

  bu::section("BER vs SIR (SNR fixed at 30 dB)");
  std::printf("%10s %16s %16s\n", "SIR(dB)", "spread BER", "unspread BER");
  std::vector<double> ber_spread;
  std::vector<double> ber_narrow;
  for (const double sir : sirs) {
    const ToneInterference jam{sir, tone_freq};
    const LinkResult s = run_dsss_link({phy::DsssRate::k1Mbps, true}, bits,
                                       packets, 30.0, rng, jam);
    const LinkResult n = run_dsss_link({phy::DsssRate::k1Mbps, false}, bits,
                                       packets, 30.0, rng, jam);
    ber_spread.push_back(s.ber());
    ber_narrow.push_back(n.ber());
    std::printf("%10.1f %16.5f %16.5f\n", sir, s.ber(), n.ber());
  }

  bu::series("ber_vs_sir_spread", "sir_db", sirs, "ber", ber_spread);
  bu::series("ber_vs_sir_unspread", "sir_db", sirs, "ber", ber_narrow);

  // BER decreases with SIR; find the 1e-2 crossings.
  const double sir_spread = bu::crossing(sirs, ber_spread, 1e-2);
  const double sir_narrow = bu::crossing(sirs, ber_narrow, 1e-2);
  const double gain = sir_narrow - sir_spread;
  bu::metric("processing_gain_db", gain);

  bu::section("operating points");
  std::printf("  SIR @ BER=1e-2, spread   : %6.1f dB\n", sir_spread);
  std::printf("  SIR @ BER=1e-2, unspread : %6.1f dB\n", sir_narrow);
  std::printf("  measured processing gain : %6.1f dB (theory 10*log10(11) "
              "= 10.4 dB)\n", gain);

  // The other standardized spread-spectrum form: frequency hopping evades
  // rather than suppresses the jammer — only the dwells that land on the
  // jammed channel are lost.
  bu::section("FHSS alternative (paper: 'both DSSS and FHSS were standardized')");
  phy::FhssModem::Config fhss;
  fhss.symbols_per_hop = 50;
  const auto hop_clean = phy::run_fhss_link(fhss, 30000, 25.0, rng);
  const auto hop_jammed = phy::run_fhss_link(fhss, 30000, 25.0, rng,
                                             /*jammed_channel=*/0,
                                             /*jam_power=*/10.0);
  std::printf("  no jammer            : BER %.5f\n", hop_clean.ber());
  std::printf("  10 dB jammer, 1 ch   : BER %.5f (%zu of %zu dwells hit; "
              "1/79 of the band)\n",
              hop_jammed.ber(), hop_jammed.jammed_hops, hop_jammed.total_hops);

  bu::metric("fhss_jammed_ber", hop_jammed.ber());
  const bool ok = gain > 7.0 && gain < 14.0;
  const bool fhss_ok = hop_jammed.ber() < 0.05 && hop_clean.bit_errors == 0;
  bu::verdict(ok && fhss_ok,
              "DSSS suppresses the jammer by %.1f dB; FHSS confines a "
              "10 dB jammer to %.1f%% BER by hopping around it",
              gain, hop_jammed.ber() * 100.0);
  return ok && fhss_ok ? 0 : 1;
}

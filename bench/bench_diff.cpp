// Regression gate CLI over obs/regress.h.
//
//   bench_diff <aggregate.json> <baseline.json> [--subset]
//       Compares the run against the baseline; prints every drifted,
//       missing, or regressed metric and exits 1 on any failure.
//       --subset skips baseline benches absent from the aggregate (for
//       partial reruns via run_benches.sh --only).
//
//   bench_diff <aggregate.json> --write-baseline <out.json>
//              [--rel-tol <frac>] [--abs-tol <abs>]
//       Pins every metric of the aggregate at its current value; commit
//       the result as bench-out/BENCH_BASELINE.json.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/check.h"
#include "obs/json.h"
#include "obs/regress.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <aggregate.json> <baseline.json> [--subset]\n"
               "       %s <aggregate.json> --write-baseline <out.json>\n"
               "          [--rel-tol <frac>] [--abs-tol <abs>]\n",
               argv0, argv0);
  return 2;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  wlan::check(in.is_open(), "bench_diff: cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

int main(int argc, char** argv) {
  using wlan::obs::JsonValue;
  std::string aggregate_path;
  std::string baseline_path;
  std::string write_path;
  double rel_tol = 0.25;
  double abs_tol = 1e-9;
  bool subset = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--write-baseline" && i + 1 < argc) {
      write_path = argv[++i];
    } else if (a == "--rel-tol" && i + 1 < argc) {
      rel_tol = std::stod(argv[++i]);
    } else if (a == "--abs-tol" && i + 1 < argc) {
      abs_tol = std::stod(argv[++i]);
    } else if (a == "--subset") {
      subset = true;
    } else if (!a.empty() && a[0] == '-') {
      return usage(argv[0]);
    } else if (aggregate_path.empty()) {
      aggregate_path = a;
    } else if (baseline_path.empty()) {
      baseline_path = a;
    } else {
      return usage(argv[0]);
    }
  }
  if (aggregate_path.empty()) return usage(argv[0]);
  if (write_path.empty() == baseline_path.empty()) return usage(argv[0]);

  try {
    const JsonValue aggregate = JsonValue::parse(slurp(aggregate_path));
    if (!write_path.empty()) {
      std::ofstream out(write_path);
      wlan::check(out.is_open(), "bench_diff: cannot write " + write_path);
      out << wlan::obs::make_baseline_json(aggregate, rel_tol, abs_tol);
      std::printf("baseline written: %s\n", write_path.c_str());
      return 0;
    }
    const JsonValue baseline = JsonValue::parse(slurp(baseline_path));
    const wlan::obs::DiffResult result =
        wlan::obs::diff_against_baseline(aggregate, baseline, subset);
    wlan::obs::write_diff_report(std::cout, result);
    return result.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_diff: %s\n", e.what());
    return 2;
  }
}

// C8 — Closed-loop transmit beamforming "to improve rate and reach".
//
// Paper: "Even closed loop, transmit side beamforming may be specified in
// order to improve rate and reach."
//
// Rate: waterfilling over the eigenmodes (transmit CSI) vs equal-power
// open loop. Reach: single-stream SVD beamforming vs SISO and vs open-loop
// 2x2 at the PER level, with the SNR advantage converted into range.
#include <vector>

#include "bench_util.h"
#include "core/wlan.h"

int main(int argc, char** argv) {
  using namespace wlan;
  namespace bu = benchutil;
  bu::args(argc, argv);

  bu::title("C8: closed-loop SVD beamforming",
            "transmit-side channel knowledge improves both rate "
            "(waterfilling) and reach (array gain)");

  Rng rng(8);

  bu::section("capacity with and without transmit CSI (2x2 Rayleigh, bps/Hz)");
  std::printf("%9s %12s %12s %10s\n", "SNR(dB)", "open loop", "closed loop",
              "gain");
  const int trials = 400;
  for (const double snr_db : {-5.0, 0.0, 5.0, 10.0, 20.0}) {
    const double snr = db_to_lin(snr_db);
    double open_loop = 0.0;
    double closed_loop = 0.0;
    for (int t = 0; t < trials; ++t) {
      const auto h = channel::iid_rayleigh_matrix(rng, 2, 2);
      open_loop += linalg::mimo_capacity_bps_hz(h, snr);
      closed_loop += linalg::waterfilling_capacity_bps_hz(linalg::svd(h).s, snr);
    }
    open_loop /= trials;
    closed_loop /= trials;
    std::printf("%9.1f %12.2f %12.2f %9.0f%%\n", snr_db, open_loop, closed_loop,
                100.0 * (closed_loop / open_loop - 1.0));
  }

  bu::section("PER vs SNR, single stream 16-QAM 1/2 (office multipath)");
  std::printf("%9s %10s %10s %10s\n", "SNR(dB)", "SISO 1x1", "BF 2x1",
              "BF 4x1");
  std::vector<double> snrs;
  std::vector<double> per_siso;
  std::vector<double> per_bf2;
  std::vector<double> per_bf4;
  for (double snr = 4.0; snr <= 22.0; snr += 2.0) {
    phy::HtConfig siso;
    siso.mcs = 3;
    phy::HtConfig bf2 = siso;
    bf2.scheme = phy::SpatialScheme::kBeamforming;
    bf2.n_tx = 2;
    bf2.n_rx = 1;
    phy::HtConfig bf4 = bf2;
    bf4.n_tx = 4;
    const LinkResult rs =
        run_ht_link(siso, 500, 50, snr, rng, channel::DelayProfile::kOffice);
    const LinkResult r2 =
        run_ht_link(bf2, 500, 50, snr, rng, channel::DelayProfile::kOffice);
    const LinkResult r4 =
        run_ht_link(bf4, 500, 50, snr, rng, channel::DelayProfile::kOffice);
    snrs.push_back(snr);
    per_siso.push_back(rs.per());
    per_bf2.push_back(r2.per());
    per_bf4.push_back(r4.per());
    std::printf("%9.1f %10.2f %10.2f %10.2f\n", snr, rs.per(), r2.per(),
                r4.per());
  }

  bu::series("per_vs_snr_siso_1x1", "snr_db", snrs, "per", per_siso);
  bu::series("per_vs_snr_bf_2x1", "snr_db", snrs, "per", per_bf2);
  bu::series("per_vs_snr_bf_4x1", "snr_db", snrs, "per", per_bf4);
  const double s_siso = bu::crossing(snrs, per_siso, 0.10);
  const double s_bf2 = bu::crossing(snrs, per_bf2, 0.10);
  const double s_bf4 = bu::crossing(snrs, per_bf4, 0.10);

  channel::PathLossModel pl;
  const double base = pl.distance_for_path_loss(95.0);
  bu::section("SNR @ PER=10% and the reach it buys (3.5-exponent slope)");
  std::printf("  SISO : %6.1f dB -> reference range\n", s_siso);
  std::printf("  2x1  : %6.1f dB (%.1f dB gain, %.2fx range)\n", s_bf2,
              s_siso - s_bf2,
              pl.distance_for_path_loss(95.0 + s_siso - s_bf2) / base);
  std::printf("  4x1  : %6.1f dB (%.1f dB gain, %.2fx range)\n", s_bf4,
              s_siso - s_bf4,
              pl.distance_for_path_loss(95.0 + s_siso - s_bf4) / base);

  // Expected: ~3 dB array gain for 2 antennas, ~6 dB for 4, plus the
  // diversity slope change in fading.
  bu::metric("array_gain_db_2x1", s_siso - s_bf2);
  bu::metric("array_gain_db_4x1", s_siso - s_bf4);
  const bool ok = (s_siso - s_bf2) > 1.5 && (s_bf2 - s_bf4) > 0.5;
  bu::verdict(ok,
              "beamforming gains %.1f dB (2 antennas) and %.1f dB "
              "(4 antennas) at PER=10%%, improving both rate and reach",
              s_siso - s_bf2, s_siso - s_bf4);
  return ok ? 0 : 1;
}

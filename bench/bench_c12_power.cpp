// C12 — MIMO power cost and the paper's three mitigations.
//
// Paper: "Multiple transmit and receive RF chains ... significantly
// increase the power consumption over single antenna devices." And the
// mitigations: "MIMO systems could reduce power by switching off all but
// one receive chain until a packet is detected"; "Closed loop beamforming
// techniques could allow for effective transmit power control"; "mesh or
// cooperative diversity schemes could share some of the power burden with
// willing third party devices".
#include <vector>

#include "bench_util.h"
#include "core/wlan.h"

int main(int argc, char** argv) {
  using namespace wlan;
  namespace bu = benchutil;
  bu::args(argc, argv);

  bu::title("C12: the power cost of MIMO, and three mitigations",
            "N chains cost ~Nx RF power; chain switching, beamforming TX "
            "power control, and cooperative relaying claw it back");

  power::RadioPowerModel radio;
  const double out_dbm = 14.0;  // per-chain average output
  const double backoff = 10.0;  // OFDM headroom

  bu::section("device power vs antenna count (active TX / active RX)");
  std::printf("%8s %12s %12s %16s\n", "chains", "TX power", "RX power",
              "20MHz rate(Mbps)");
  std::vector<double> tx_w;
  std::vector<double> rx_w;
  for (const std::size_t n : {1u, 2u, 3u, 4u}) {
    tx_w.push_back(radio.tx_power_w(n, out_dbm, backoff));
    rx_w.push_back(radio.rx_power_w(n, n));
    const double rate = phy::ht_data_rate_mbps(static_cast<unsigned>(8 * (n - 1) + 7),
                                               phy::HtBandwidth::k20MHz,
                                               phy::HtGuardInterval::kLong);
    std::printf("%8zu %9.0f mW %9.0f mW %16.1f\n", n, tx_w.back() * 1e3,
                rx_w.back() * 1e3, rate);
  }

  bu::section("transmit energy per bit (J/bit) — rate can outrun power");
  std::printf("%8s %14s %16s\n", "chains", "rate(Mbps)", "energy (nJ/bit)");
  std::vector<double> epb;
  for (const std::size_t n : {1u, 2u, 4u}) {
    const double rate = phy::ht_data_rate_mbps(static_cast<unsigned>(8 * (n - 1) + 7),
                                               phy::HtBandwidth::k20MHz,
                                               phy::HtGuardInterval::kLong);
    epb.push_back(power::tx_energy_per_bit_j(radio, n, out_dbm, backoff, rate));
    std::printf("%8zu %14.1f %16.2f\n", n, rate, epb.back() * 1e9);
  }

  bu::section("mitigation 1: receive chain switching (4x4 radio)");
  std::printf("%16s %14s %10s\n", "RX duty cycle", "mean power", "saving");
  const double always = radio.rx_power_w(4, 4);
  double saving_at_5pct = 0.0;
  for (const double duty : {1.0, 0.5, 0.2, 0.05, 0.01}) {
    const double p = power::chain_switching_rx_power_w(radio, 4, 4, duty);
    if (duty == 0.05) saving_at_5pct = always / p;
    std::printf("%15.0f%% %11.0f mW %9.1fx\n", duty * 100.0, p * 1e3,
                always / p);
  }

  bu::section("mitigation 2: beamforming as TX power control (same SNR at RX)");
  std::printf("%10s %16s %14s\n", "antennas", "radiated (dBm)", "PA DC power");
  double pa_1 = 0.0;
  double pa_4 = 0.0;
  for (const std::size_t n : {1u, 2u, 4u}) {
    const double out = power::beamforming_tx_power_dbm(out_dbm, n);
    const double dc = radio.pa.dc_power_w(out, backoff) * static_cast<double>(n);
    if (n == 1) pa_1 = dc;
    if (n == 4) pa_4 = dc;
    std::printf("%10zu %16.1f %11.0f mW (x%zu PAs)\n", n, out, dc * 1e3, n);
  }

  bu::section("bonus: antenna selection — diversity at single-chain power");
  {
    // MRC powers both receive chains; switched selection powers one and
    // still collects most of the diversity order (paper's chain-switching
    // idea taken to its limit).
    Rng rng2(121);
    auto per_of = [&rng2](phy::SpatialScheme scheme) {
      phy::HtConfig cfg;
      cfg.mcs = 3;
      cfg.scheme = scheme;
      cfg.n_rx = 2;
      int errors = 0;
      const int packets = 150;
      for (int p = 0; p < packets; ++p) {
        const phy::HtPhy phy(cfg);
        const Bytes psdu = rng2.random_bytes(300);
        const auto tones = phy.draw_channel(rng2, channel::DelayProfile::kFlat);
        if (phy.simulate_link(psdu, tones, 14.0, rng2) != psdu) ++errors;
      }
      return static_cast<double>(errors) / packets;
    };
    const double per_mrc = per_of(phy::SpatialScheme::kMrc);
    const double per_sel = per_of(phy::SpatialScheme::kAntennaSelection);
    std::printf("%22s %10s %14s\n", "scheme", "PER@14dB", "RX power");
    std::printf("%22s %10.2f %11.0f mW\n", "MRC 1x2 (2 chains)", per_mrc,
                radio.rx_power_w(2, 1) * 1e3);
    std::printf("%22s %10.2f %11.0f mW\n", "selection 1x2 (1 chain)", per_sel,
                radio.rx_power_w(1, 1) * 1e3);
  }

  bu::section("mitigation 3: cooperative power sharing (DF selection relay)");
  Rng rng(12);
  coop::CoopConfig cfg;
  cfg.scheme = coop::Scheme::kDfSelection;
  cfg.mean_snr_sd_db = 8.0;
  cfg.mean_snr_sr_db = 16.0;
  cfg.mean_snr_rd_db = 16.0;
  const auto r = coop::simulate(cfg, 100000, rng);
  std::printf("  relay decodes and carries the second slot %.0f%% of the "
              "time,\n  shifting %.0f%% of transmit airtime (and its PA "
              "energy) off the source battery\n",
              r.relay_decode_fraction * 100.0, r.relay_airtime_fraction * 100.0);

  bu::series("tx_power_w_vs_chains", "chains", {1.0, 2.0, 3.0, 4.0}, "watts",
             tx_w);
  bu::series("rx_power_w_vs_chains", "chains", {1.0, 2.0, 3.0, 4.0}, "watts",
             rx_w);
  bu::metric("tx_power_ratio_4x4_vs_1x1", tx_w[3] / tx_w[0]);
  bu::metric("rx_power_ratio_4x4_vs_1x1", rx_w[3] / rx_w[0]);
  bu::metric("chain_switching_saving_at_5pct_duty", saving_at_5pct);
  bu::metric("relay_airtime_fraction", r.relay_airtime_fraction);
  const bool cost_shape = tx_w[3] > 2.5 * tx_w[0] && rx_w[3] > 2.0 * rx_w[0];
  const bool mitigations = saving_at_5pct > 2.0 && pa_4 < 1.2 * pa_1 &&
                           r.relay_airtime_fraction > 0.3;
  bu::verdict(cost_shape && mitigations,
              "4x4 costs %.1fx the TX and %.1fx the RX power of 1x1; chain "
              "switching saves %.1fx at light duty; 4-antenna beamforming "
              "radiates 6 dB less per PA; the relay absorbs %.0f%% of "
              "transmit airtime",
              tx_w[3] / tx_w[0], rx_w[3] / rx_w[0], saving_at_5pct,
              r.relay_airtime_fraction * 100.0);
  return cost_shape && mitigations ? 0 : 1;
}

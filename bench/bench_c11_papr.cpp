// C11 — OFDM PAPR and power-amplifier efficiency.
//
// Paper: "beginning with the introduction of OFDM, the high
// peak-to-average ratios characteristic of spectrally efficient
// modulation have resulted in low power efficiency of the power amplifier
// and other components in order to achieve the necessary high linearity."
#include <vector>

#include "bench_util.h"
#include "core/wlan.h"
#include "dsp/ops.h"

int main(int argc, char** argv) {
  using namespace wlan;
  namespace bu = benchutil;
  bu::args(argc, argv);

  bu::title("C11: waveform PAPR and the PA efficiency it costs",
            "OFDM's ~10 dB PAPR forces PA backoff that collapses "
            "efficiency vs the near-constant-envelope DSSS era");

  Rng rng(11);

  // Build long representative waveforms per generation.
  struct Waveform {
    const char* name;
    CVec samples;
  };
  std::vector<Waveform> waves;
  {
    const phy::DsssModem dsss({phy::DsssRate::k2Mbps, true});
    waves.push_back({"802.11 DSSS", dsss.modulate(rng.random_bits(20000))});
    const phy::CckModem cck(phy::CckRate::k11Mbps);
    waves.push_back({"802.11b CCK", cck.modulate(rng.random_bits(20000))});
    const phy::OfdmPhy ofdm(phy::OfdmMcs::k54Mbps);
    CVec w;
    for (int p = 0; p < 8; ++p) {
      const CVec pkt = ofdm.transmit(rng.random_bytes(1000));
      w.insert(w.end(), pkt.begin(), pkt.end());
    }
    waves.push_back({"802.11a OFDM", std::move(w)});
  }

  const RVec thresholds = {3.0, 5.0, 7.0, 9.0, 11.0};
  bu::section("CCDF of instantaneous power above average (fraction of samples)");
  std::printf("%-14s", "dB above avg:");
  for (const double t : thresholds) std::printf(" %9.0f", t);
  std::printf(" %10s\n", "PAPR(dB)");

  std::vector<double> paprs;
  const std::vector<std::string> wave_keys = {"dsss", "cck", "ofdm"};
  for (std::size_t i = 0; i < waves.size(); ++i) {
    const Waveform& w = waves[i];
    const RVec ccdf = dsp::power_ccdf(w.samples, thresholds);
    std::printf("%-14s", w.name);
    for (const double c : ccdf) std::printf(" %9.5f", c);
    const double papr = dsp::papr_db(w.samples);
    paprs.push_back(papr);
    std::printf(" %10.1f\n", papr);
    bu::series("power_ccdf_" + wave_keys[i], "threshold_db",
               std::vector<double>(thresholds.begin(), thresholds.end()),
               "fraction", std::vector<double>(ccdf.begin(), ccdf.end()));
    bu::metric("papr_db_" + wave_keys[i], papr);
  }

  bu::section("PA consequences (class-AB, 40% peak efficiency, same 15 dBm avg)");
  power::PaModel pa;
  std::printf("%-14s %12s %14s %14s\n", "waveform", "backoff(dB)",
              "efficiency", "PA DC power");
  std::vector<double> effs;
  for (std::size_t i = 0; i < waves.size(); ++i) {
    // Back off to the waveform's PAPR (headroom for undistorted peaks).
    const double backoff = std::min(paprs[i], 10.0);
    const double eff = pa.efficiency_at_backoff_db(backoff);
    effs.push_back(eff);
    std::printf("%-14s %12.1f %13.1f%% %11.0f mW\n", waves[i].name, backoff,
                eff * 100.0, pa.dc_power_w(15.0, backoff) * 1e3);
  }

  for (std::size_t i = 0; i < waves.size(); ++i) {
    bu::metric("pa_efficiency_" + wave_keys[i], effs[i]);
  }
  const bool papr_shape = paprs[0] < 4.0 && paprs[2] > 8.0;
  const bool eff_shape = effs[0] > 2.0 * effs[2];
  bu::verdict(papr_shape && eff_shape,
              "DSSS %.1f dB vs OFDM %.1f dB PAPR; PA efficiency falls from "
              "%.0f%% to %.0f%% — a %.1fx DC power penalty at equal output",
              paprs[0], paprs[2], effs[0] * 100.0, effs[2] * 100.0,
              effs[0] / effs[2]);
  return papr_shape && eff_shape ? 0 : 1;
}

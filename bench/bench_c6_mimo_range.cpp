// C6 — MIMO range extension through spatial diversity.
//
// Paper: "Through the availability of spatial diversity provided by
// multiple antennas, the range of a wireless LAN network in a fading
// multipath environment is extended several-fold relative to a
// conventional signal antenna or SISO system."
//
// Fixed MCS (16-QAM 1/2), flat Rayleigh block fading, dual-slope path
// loss. We sweep distance, measure PER for SISO / MRC / STBC / 2x2, and
// report the distance at which PER crosses 10%.
#include <algorithm>
#include <vector>

#include "bench_util.h"
#include "core/wlan.h"

namespace {

using namespace wlan;

double per_at(const phy::HtConfig& cfg, double snr_db, Rng& rng) {
  const LinkResult r =
      run_ht_link(cfg, 500, 60, snr_db, rng, channel::DelayProfile::kFlat);
  return r.per();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wlan;
  namespace bu = benchutil;
  bu::args(argc, argv);

  bu::title("C6: MIMO range extension in a fading environment",
            "spatial diversity extends range several-fold over SISO");

  channel::PathLossModel pl;  // 5.2 GHz dual-slope
  const double tx_dbm = 17.0;
  Rng rng(6);

  struct Scheme {
    const char* name;
    phy::HtConfig cfg;
  };
  std::vector<Scheme> schemes;
  {
    phy::HtConfig siso;
    siso.mcs = 3;  // 16-QAM 1/2, 26 Mbps @ 20 MHz
    schemes.push_back({"SISO 1x1", siso});
    phy::HtConfig mrc = siso;
    mrc.scheme = phy::SpatialScheme::kMrc;
    mrc.n_rx = 2;
    schemes.push_back({"MRC 1x2", mrc});
    phy::HtConfig stbc = siso;
    stbc.scheme = phy::SpatialScheme::kStbc;
    stbc.n_rx = 1;
    schemes.push_back({"STBC 2x1", stbc});
    phy::HtConfig stbc22 = siso;
    stbc22.scheme = phy::SpatialScheme::kStbc;
    stbc22.n_rx = 2;
    schemes.push_back({"STBC 2x2", stbc22});
    phy::HtConfig bf = siso;
    bf.scheme = phy::SpatialScheme::kBeamforming;
    bf.n_tx = 4;
    bf.n_rx = 1;
    schemes.push_back({"BF 4x1", bf});
    phy::HtConfig sel = siso;
    sel.scheme = phy::SpatialScheme::kAntennaSelection;
    sel.n_rx = 2;
    schemes.push_back({"SEL 1x2", sel});
  }

  std::vector<double> dists;
  for (double d = 10.0; d <= 130.0; d += 8.0) dists.push_back(d);

  bu::section("PER vs distance (16-QAM 1/2, flat Rayleigh per packet)");
  std::printf("%10s", "dist(m)");
  for (const Scheme& s : schemes) std::printf(" %10s", s.name);
  std::printf("\n");

  std::vector<std::vector<double>> per(schemes.size());
  for (const double d : dists) {
    const double snr = snr_at_distance_db(pl, d, tx_dbm, 20e6);
    std::printf("%10.0f", d);
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      const double p = per_at(schemes[s].cfg, snr, rng);
      per[s].push_back(p);
      std::printf(" %10.2f", p);
    }
    std::printf("\n");
  }

  for (std::size_t s = 0; s < schemes.size(); ++s) {
    bu::series(std::string("per_vs_distance_") + schemes[s].name, "distance_m",
               dists, "per", per[s]);
  }

  bu::section("range at PER = 10%");
  std::vector<double> range(schemes.size());
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    range[s] = bu::crossing(dists, per[s], 0.10);
    std::printf("  %-10s: %5.0f m (%.1fx SISO)\n", schemes[s].name, range[s],
                range[s] / range[0]);
    bu::metric(std::string("range_m_") + schemes[s].name, range[s]);
  }

  const double best_multiple =
      *std::max_element(range.begin() + 1, range.end()) / range[0];
  const bool ok = !std::isnan(range[0]) && best_multiple > 1.5;
  bu::verdict(ok,
              "diversity multiplies usable range up to %.1fx at equal rate "
              "(a 'several-fold' coverage-area gain of %.1fx)",
              best_multiple, best_multiple * best_multiple);
  return ok ? 0 : 1;
}

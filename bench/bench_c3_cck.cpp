// C3 — CCK: fivefold efficiency over Barker DSSS at DSSS-like spectrum.
//
// Paper: "In 802.11b, a combined modulation and coding scheme known as
// CCK was adopted to increase rate while maintaining a DSSS like
// signature ... a spectral efficiency of 0.5 bps/Hz was achieved,
// representing a fivefold increase over the earlier standard."
#include <vector>

#include "bench_util.h"
#include "core/wlan.h"
#include "dsp/spectrum.h"

int main(int argc, char** argv) {
  using namespace wlan;
  namespace bu = benchutil;
  bu::args(argc, argv);

  bu::title("C3: 802.11b CCK vs 802.11 DSSS",
            "CCK carries 11 Mbps (0.5 bps/Hz) in the same 11 Mchip/s "
            "envelope that carries 2 Mbps (0.1 bps/Hz) with Barker DSSS");

  Rng rng(3);
  const std::size_t packets = 25;

  bu::section("rates from the chip clock (all at 11 Mchip/s)");
  std::printf("  DSSS DBPSK : 1 bit  / 11 chips = %5.2f Mbps\n", 11.0 / 11.0);
  std::printf("  DSSS DQPSK : 2 bits / 11 chips = %5.2f Mbps\n", 2 * 11.0 / 11.0);
  std::printf("  CCK  5.5   : 4 bits /  8 chips = %5.2f Mbps\n", 4 * 11.0 / 8.0);
  std::printf("  CCK  11    : 8 bits /  8 chips = %5.2f Mbps\n", 8 * 11.0 / 8.0);
  std::printf("  efficiency : 11 Mbps / 22 MHz = 0.5 bps/Hz; 2 / 20 = 0.1 -> "
              "5.0x\n");

  bu::section("AWGN BER waterfalls (chip-level SNR)");
  std::printf("%10s %12s %12s %12s %12s\n", "SNR(dB)", "DSSS 1M", "DSSS 2M",
              "CCK 5.5M", "CCK 11M");
  std::vector<double> snrs;
  std::vector<double> ber11;
  std::vector<double> ber1;
  for (double snr = -6.0; snr <= 10.0; snr += 2.0) {
    const LinkResult d1 =
        run_dsss_link({phy::DsssRate::k1Mbps, true}, 1000, packets, snr, rng);
    const LinkResult d2 =
        run_dsss_link({phy::DsssRate::k2Mbps, true}, 1000, packets, snr, rng);
    const LinkResult c5 =
        run_cck_link(phy::CckRate::k5_5Mbps, 1000, packets, snr, rng);
    const LinkResult c11 =
        run_cck_link(phy::CckRate::k11Mbps, 1000, packets, snr, rng);
    std::printf("%10.1f %12.5f %12.5f %12.5f %12.5f\n", snr, d1.ber(), d2.ber(),
                c5.ber(), c11.ber());
    snrs.push_back(snr);
    ber1.push_back(d1.ber());
    ber11.push_back(c11.ber());
  }

  bu::series("ber_vs_snr_dsss_1m", "snr_db", snrs, "ber", ber1);
  bu::series("ber_vs_snr_cck_11m", "snr_db", snrs, "ber", ber11);

  // CCK trades SNR for rate: its waterfall sits right of DSSS-1M but
  // within a few dB (the CCK codeword distance does real coding work).
  const double snr1 = bu::crossing(snrs, ber1, 1e-3);
  const double snr11 = bu::crossing(snrs, ber11, 1e-3);
  bu::section("sensitivity comparison");
  std::printf("  SNR @ BER=1e-3: DSSS 1M %6.1f dB, CCK 11M %6.1f dB "
              "(delta %.1f dB for 11x the rate)\n",
              snr1, snr11, snr11 - snr1);

  // "...increase rate while maintaining a DSSS like signature to other
  // users of the unlicensed band": measure the PSD similarity directly.
  bu::section("spectral signature (Welch PSD, Bhattacharyya similarity)");
  const phy::DsssModem dsss_modem({phy::DsssRate::k2Mbps, true});
  const phy::CckModem cck_modem(phy::CckRate::k11Mbps);
  const phy::OfdmPhy ofdm(phy::OfdmMcs::k54Mbps);
  const CVec w_dsss = dsss_modem.modulate(rng.random_bits(20000));
  const CVec w_cck = cck_modem.modulate(rng.random_bits(20000));
  CVec w_ofdm;
  for (int p = 0; p < 6; ++p) {
    const CVec pkt = ofdm.transmit(rng.random_bytes(800));
    w_ofdm.insert(w_ofdm.end(), pkt.begin(), pkt.end());
  }
  const RVec p_dsss = dsp::welch_psd(w_dsss, 64);
  const RVec p_cck = dsp::welch_psd(w_cck, 64);
  const RVec p_ofdm = dsp::welch_psd(w_ofdm, 64);
  const double sig_dsss = dsp::spectral_similarity(p_cck, p_dsss);
  const double sig_ofdm = dsp::spectral_similarity(p_cck, p_ofdm);
  std::printf("  CCK vs Barker DSSS : %.3f\n", sig_dsss);
  std::printf("  CCK vs OFDM        : %.3f (for contrast)\n", sig_ofdm);

  bu::metric("snr_delta_db_at_ber_1e3", snr11 - snr1);
  bu::metric("spectral_similarity_cck_dsss", sig_dsss);
  bu::metric("spectral_similarity_cck_ofdm", sig_ofdm);
  const bool ok = snr11 - snr1 > 0.0 && snr11 - snr1 < 14.0;
  const bool signature = sig_dsss > 0.95;
  bu::verdict(ok && signature,
              "CCK delivers 5.5x the bits per chip of DSSS-2M for %.1f dB "
              "more SNR while keeping a %.0f%%-similar DSSS spectral "
              "signature", snr11 - snr1, sig_dsss * 100.0);
  return ok && signature ? 0 : 1;
}

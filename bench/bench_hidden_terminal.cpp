// Extension bench — hidden terminals and the RTS/CTS tradeoff, on the
// event-driven network simulator (per-node carrier sense, SINR capture).
//
// Not a numbered claim of the paper, but the mechanism behind its MAC
// efficiency narrative: CSMA works when stations hear each other, and the
// protocol machinery (virtual carrier sense) exists for when they don't.
#include <vector>

#include "bench_util.h"
#include "core/wlan.h"
#include "par/montecarlo.h"

int main(int argc, char** argv) {
  using namespace wlan;
  namespace bu = benchutil;
  bu::args(argc, argv);

  bu::title("EXT: hidden terminals, capture, and RTS/CTS",
            "two saturated senders around one receiver; spacing controls "
            "whether carrier sense works");

  bu::section("throughput and data-loss vs sender spacing (1000 B @ 24 Mbps)");
  std::printf("%12s | %12s %12s | %12s %12s %12s\n", "spacing (m)",
              "basic thr", "data loss", "RTS thr", "data loss", "RTS loss");
  double basic_loss_hidden = 0.0;
  double rts_loss_hidden = 0.0;
  std::vector<double> spacings;
  std::vector<double> basic_thr;
  std::vector<double> rts_thr;
  std::vector<double> basic_loss;
  std::vector<double> rts_loss;
  double basic_collision_frac_hidden = 0.0;
  double rts_collision_frac_hidden = 0.0;
  // Distance points run on the worker pool (--jobs). Each point keeps
  // the fixed per-run seeds of the old serial loop (the derived Rng is
  // unused), so the table is bitwise identical for any thread count.
  const std::vector<double> distances = {30.0, 60.0, 100.0, 130.0, 160.0};
  struct SpacingPoint {
    net::NetworkResult basic;
    net::NetworkResult rts;
  };
  const auto spacing_points = par::map(
      distances.size(), par::SweepOptions{},
      [&](std::size_t i, Rng&) {
        const double d = distances[i];
        const auto setup = net::make_hidden_terminal_setup(d);
        net::NetworkConfig cfg;
        cfg.duration_s = 3.0;
        // The airtime ledger turns the loss numbers into a channel-time
        // story: hidden senders show up as collision airtime, not idle.
        cfg.airtime = d == 100.0;
        // --latency adds the frame-lifecycle books (delay attribution +
        // invariant audit) at the same representative point.
        cfg.lifecycle.enabled = bu::latency() && d == 100.0;
        Rng r1(7);
        SpacingPoint point;
        point.basic = net::simulate_network(cfg, setup.nodes, setup.flows, r1);
        cfg.rts_cts = true;
        // The representative Perfetto timeline (--chrome-trace): the
        // hidden pair with RTS/CTS, where NAV protection is visible on
        // the nav lane. Only this point touches the shared sink.
        if (d == 100.0) cfg.trace = bu::chrome_trace();
        Rng r2(7);
        point.rts = net::simulate_network(cfg, setup.nodes, setup.flows, r2);
        return point;
      });
  for (std::size_t i = 0; i < distances.size(); ++i) {
    const double d = distances[i];
    const net::NetworkResult& basic = spacing_points[i].basic;
    const net::NetworkResult& rts = spacing_points[i].rts;
    if (d == 100.0) {
      basic_collision_frac_hidden = basic.airtime.collision_fraction();
      rts_collision_frac_hidden = rts.airtime.collision_fraction();
    }
    const double rts_frame_loss =
        rts.rts_tx_count ? static_cast<double>(rts.rts_failures) /
                               static_cast<double>(rts.rts_tx_count)
                         : 0.0;
    // 100 m: senders hidden from each other, but the AP's CTS still
    // reaches both — the regime RTS/CTS was designed for. (At 130 m+ the
    // CTS itself drops below the far sender's carrier-sense floor and the
    // protection genuinely erodes; the table shows that too.)
    if (d == 100.0) {
      basic_loss_hidden = basic.data_failure_rate();
      rts_loss_hidden = rts.data_failure_rate();
    }
    spacings.push_back(d);
    basic_thr.push_back(basic.aggregate_throughput_mbps);
    rts_thr.push_back(rts.aggregate_throughput_mbps);
    basic_loss.push_back(basic.data_failure_rate());
    rts_loss.push_back(rts.data_failure_rate());
    std::printf("%12.0f | %10.1f M %12.3f | %10.1f M %12.3f %12.3f\n", d,
                basic.aggregate_throughput_mbps, basic.data_failure_rate(),
                rts.aggregate_throughput_mbps, rts.data_failure_rate(),
                rts_frame_loss);
  }
  bu::series("basic_thr_vs_spacing", "spacing_m", spacings, "mbps", basic_thr);
  bu::series("rts_thr_vs_spacing", "spacing_m", spacings, "mbps", rts_thr);
  bu::series("basic_loss_vs_spacing", "spacing_m", spacings, "fraction",
             basic_loss);
  bu::series("rts_loss_vs_spacing", "spacing_m", spacings, "fraction",
             rts_loss);

  bu::section("contention scaling with everyone in range (AP + N stations)");
  std::printf("%10s %14s %18s\n", "stations", "agg thr", "same-slot starts");
  const std::vector<std::size_t> station_counts = {1, 2, 4, 8, 16};
  const auto contention_points = par::map(
      station_counts.size(), par::SweepOptions{},
      [&](std::size_t i, Rng&) {
        const std::size_t n_sta = station_counts[i];
        std::vector<net::NodeConfig> nodes(n_sta + 1);
        std::vector<net::Flow> flows;
        for (std::size_t s = 0; s < n_sta; ++s) {
          const double angle = 6.2832 * static_cast<double>(s) /
                               static_cast<double>(n_sta);
          nodes[s].position = {10.0 * std::cos(angle), 10.0 * std::sin(angle)};
          flows.push_back({s, n_sta});
        }
        net::NetworkConfig cfg;
        cfg.duration_s = 1.5;
        Rng prng(21 + n_sta);
        return net::simulate_network(cfg, nodes, flows, prng);
      });
  for (std::size_t i = 0; i < station_counts.size(); ++i) {
    const auto& r = contention_points[i];
    std::printf("%10zu %12.1f M %18zu\n", station_counts[i],
                r.aggregate_throughput_mbps,
                static_cast<std::size_t>(r.simultaneous_starts));
  }

  bu::section("latency vs offered load (Poisson uplink, one station)");
  std::printf("%14s %14s %16s\n", "load (pkt/s)", "delivered", "mean delay");
  // Three seeded replications per load point via the batch API (runs
  // execute on the worker pool; the averages are thread-count
  // independent by the batch determinism guarantee).
  for (const double pps : {100.0, 500.0, 1000.0, 1500.0, 1800.0}) {
    std::vector<net::NodeConfig> nodes(2);
    nodes[1].position = {10.0, 0.0};
    net::NetworkConfig cfg;
    cfg.duration_s = 3.0;
    net::BatchOptions batch;
    batch.root_seed = 5;
    const auto runs =
        net::simulate_network_batch(cfg, nodes, {{0, 1, pps}}, 3, batch);
    double thr = 0.0;
    double delay = 0.0;
    for (const auto& r : runs) {
      thr += r.flows[0].throughput_mbps;
      delay += r.flows[0].mean_delay_s;
    }
    thr /= static_cast<double>(runs.size());
    delay /= static_cast<double>(runs.size());
    std::printf("%14.0f %12.1f M %13.2f ms\n", pps, thr, delay * 1e3);
  }
  std::printf("  (the knee sits where offered load meets the ~15 Mbps DCF\n"
              "   service rate — classic M/G/1-ish queueing behaviour)\n");

  bu::metric("basic_loss_at_100m", basic_loss_hidden);
  bu::metric("rts_loss_at_100m", rts_loss_hidden);
  bu::metric("basic_collision_airtime_at_100m", basic_collision_frac_hidden);
  bu::metric("rts_collision_airtime_at_100m", rts_collision_frac_hidden);
  bool audit_ok = true;
  if (bu::latency()) {
    // The hidden pair's delay story: under basic CSMA the retry share of
    // the end-to-end delay is the cost of undetectable collisions;
    // RTS/CTS converts most of it back into cheap contention time.
    for (std::size_t i = 0; i < distances.size(); ++i) {
      if (distances[i] != 100.0) continue;
      const auto& basic_lc = spacing_points[i].basic.lifecycle;
      const auto& rts_lc = spacing_points[i].rts.lifecycle;
      const auto share = [](const obs::DelayBreakdown& b, double part) {
        return b.total_s() > 0.0 ? part / b.total_s() : 0.0;
      };
      bu::metric("basic_retry_delay_share_at_100m",
                 share(basic_lc.ledger.total, basic_lc.ledger.total.retry_s));
      bu::metric("rts_retry_delay_share_at_100m",
                 share(rts_lc.ledger.total, rts_lc.ledger.total.retry_s));
      bu::metric("lifecycle_breaches",
                 static_cast<double>(basic_lc.breaches + rts_lc.breaches));
      audit_ok = basic_lc.breaches == 0 && rts_lc.breaches == 0;
      for (const auto* lc : {&basic_lc, &rts_lc}) {
        for (const std::string& m : lc->breach_messages) {
          std::printf("  BREACH: %s\n", m.c_str());
        }
      }
    }
  }
  const bool ok =
      audit_ok && basic_loss_hidden > 0.1 && rts_loss_hidden < 0.05;
  bu::verdict(ok,
              "hidden senders lose %.0f%% of data frames under basic CSMA "
              "but %.1f%% with RTS/CTS — the virtual-carrier-sense fix "
              "works where physical carrier sense cannot",
              basic_loss_hidden * 100.0, rts_loss_hidden * 100.0);
  return ok ? 0 : 1;
}

// C13 — Protocol-level power management: what PSM buys and what the
// protocol still leaves on the table.
//
// Paper: "Wireless LAN protocols currently make few concessions to issues
// of power management as compared to cellular air interface standards.
// Undoubtedly, future wireless LAN standards could benefit from more
// attention in this area."
#include <vector>

#include "bench_util.h"
#include "core/wlan.h"

int main(int argc, char** argv) {
  using namespace wlan;
  namespace bu = benchutil;
  bu::args(argc, argv);

  bu::title("C13: power-save mode — energy vs latency at the protocol level",
            "continuous listening dominates the energy budget; PSM doze "
            "scheduling cuts it by an order of magnitude at a latency cost");

  power::RadioPowerModel radio;
  Rng rng(13);

  bu::section("energy and delay vs downlink load (20 s simulations, 100 TU "
              "beacons)");
  std::printf("%10s | %12s %12s | %12s %12s %12s\n", "pkts/s", "CAM power",
              "CAM delay", "PSM power", "PSM delay", "saving");
  double saving_light = 0.0;
  std::vector<double> ppss;
  std::vector<double> cam_power_w;
  std::vector<double> psm_power_w;
  std::vector<double> psm_delay_ms;
  for (const double pps : {1.0, 10.0, 50.0, 200.0}) {
    mac::PsmConfig cam;
    cam.psm_enabled = false;
    cam.arrival_rate_pps = pps;
    cam.duration_s = 20.0;
    mac::PsmConfig psm = cam;
    psm.psm_enabled = true;
    const auto r_cam = mac::simulate_psm(cam, rng);
    const auto r_psm = mac::simulate_psm(psm, rng);
    const double p_cam = power::psm_energy_j(radio, r_cam) / cam.duration_s;
    const double p_psm = power::psm_energy_j(radio, r_psm) / psm.duration_s;
    if (pps == 1.0) saving_light = p_cam / p_psm;
    ppss.push_back(pps);
    cam_power_w.push_back(p_cam);
    psm_power_w.push_back(p_psm);
    psm_delay_ms.push_back(r_psm.mean_delay_s * 1e3);
    std::printf("%10.0f | %9.0f mW %9.2f ms | %9.0f mW %9.0f ms %11.1fx\n",
                pps, p_cam * 1e3, r_cam.mean_delay_s * 1e3, p_psm * 1e3,
                r_psm.mean_delay_s * 1e3, p_cam / p_psm);
  }
  bu::series("cam_power_w_vs_pps", "pkts_per_s", ppss, "watts", cam_power_w);
  bu::series("psm_power_w_vs_pps", "pkts_per_s", ppss, "watts", psm_power_w);
  bu::series("psm_delay_ms_vs_pps", "pkts_per_s", ppss, "ms", psm_delay_ms);
  bu::metric("psm_saving_at_1pps", saving_light);

  bu::section("listen interval: trading more latency for more doze (10 pkt/s)");
  std::printf("%16s %12s %12s %14s\n", "listen interval", "power",
              "mean delay", "doze fraction");
  for (const unsigned li : {1u, 2u, 5u, 10u}) {
    mac::PsmConfig cfg;
    cfg.psm_enabled = true;
    cfg.arrival_rate_pps = 10.0;
    cfg.listen_interval = li;
    cfg.duration_s = 20.0;
    const auto r = mac::simulate_psm(cfg, rng);
    const double p = power::psm_energy_j(radio, r) / cfg.duration_s;
    std::printf("%16u %9.0f mW %9.0f ms %13.0f%%\n", li, p * 1e3,
                r.mean_delay_s * 1e3, 100.0 * r.time_doze_s / cfg.duration_s);
  }

  bu::section("where the CAM energy actually goes (10 pkt/s)");
  {
    mac::PsmConfig cam;
    cam.psm_enabled = false;
    cam.arrival_rate_pps = 10.0;
    cam.duration_s = 20.0;
    const auto r = mac::simulate_psm(cam, rng);
    const double e_rx = radio.rx_power_w(1, 1) * r.time_rx_s;
    const double e_tx = radio.tx_power_w(1, 15.0, 9.0) * r.time_tx_s;
    const double e_idle = radio.idle_listen_w * r.time_idle_s;
    const double total = e_rx + e_tx + e_idle;
    std::printf("  receiving data : %5.1f%%\n", 100.0 * e_rx / total);
    std::printf("  transmitting   : %5.1f%%\n", 100.0 * e_tx / total);
    std::printf("  idle listening : %5.1f%%  <- the protocol's concession "
                "gap\n", 100.0 * e_idle / total);
  }

  const bool ok = saving_light > 5.0;
  bu::verdict(ok,
              "at light load PSM cuts average power %.0fx, with delays "
              "bounded by the beacon interval — idle listening, not "
              "communication, dominates the unmanaged protocol",
              saving_light);
  return ok ? 0 : 1;
}

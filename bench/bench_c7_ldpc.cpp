// C7 — LDPC coding gain and the range it buys.
//
// Paper: "Other likely enhancements in the 802.11n standard will also
// increase the range of wireless networks, such as the use of LDPC
// codes."
//
// Part 1 measures raw coded-BPSK BER for the K=7 convolutional code vs
// the rate-1/2 LDPC block code and reads the dB gain at BER = 1e-4.
// Part 2 runs the full HT link (BCC vs LDPC at the same MCS) over fading
// and converts the SNR advantage into a range multiple through the
// dual-slope path-loss model.
#include <cmath>
#include <vector>

#include "bench_util.h"
#include "common/bits.h"
#include "core/wlan.h"
#include "dsp/simd.h"
#include "dsp/simd_int.h"
#include "par/montecarlo.h"
#include "phy/workspace.h"

int main(int argc, char** argv) {
  using namespace wlan;
  namespace bu = benchutil;
  bu::args(argc, argv);

  bu::title("C7: LDPC vs convolutional coding — gain and range",
            "LDPC's coding gain over the K=7 convolutional code extends "
            "range at equal rate");

  Rng rng(7);

  bu::section("coded BPSK over AWGN, rate 1/2 (BER vs Eb/N0)");
  const phy::LdpcCode code(648, 324, 11);
  std::vector<double> ebn0s;
  std::vector<double> ber_conv;
  std::vector<double> ber_ldpc;
  std::printf("%12s %14s %14s\n", "Eb/N0(dB)", "conv K=7", "LDPC n=648");
  // All (Eb/N0 point x block) cells run on the worker pool (--jobs);
  // per-trial counter-derived seeds make the result thread-count
  // independent.
  struct CodedBer {
    std::size_t conv_err = 0;
    std::size_t ldpc_err = 0;
    std::size_t total = 0;
  };
  constexpr std::size_t kPoints = 11;  // 0.0 .. 5.0 dB in 0.5 dB steps
  constexpr std::size_t kBlocks = 60;
  par::SweepOptions opt;
  opt.root_seed = rng.next_u64();
  const std::vector<CodedBer> coded_points = par::sweep<CodedBer>(
      kPoints, kBlocks, opt,
      [&](std::uint64_t point, std::size_t, Rng& prng, CodedBer& acc) {
        phy::Workspace& ws = phy::tls_workspace();
        const double ebn0_db = 0.5 * static_cast<double>(point);
        const double sigma = std::sqrt(1.0 / db_to_lin(ebn0_db));  // rate 1/2
        auto info = ws.bits(324);
        prng.fill_bits(*info);
        for (std::size_t i = 318; i < 324; ++i) (*info)[i] = 0;
        auto coded = ws.bits(0);
        phy::convolutional_encode_into(*info, *coded);
        auto llrs = ws.rvec(coded->size());
        for (std::size_t i = 0; i < coded->size(); ++i) {
          const double tx = (*coded)[i] ? -1.0 : 1.0;
          (*llrs)[i] = 2.0 * (tx + sigma * prng.gaussian()) / (sigma * sigma);
        }
        auto decoded = ws.bits(0);
        phy::viterbi_decode_into(*llrs, true, *decoded, ws);
        acc.conv_err += hamming_distance(*decoded, *info);

        auto info2 = ws.bits(324);
        prng.fill_bits(*info2);
        auto cw = ws.bits(0);
        code.encode_into(*info2, *cw);
        auto cllrs = ws.rvec(648);
        for (std::size_t i = 0; i < 648; ++i) {
          const double tx = (*cw)[i] ? -1.0 : 1.0;
          (*cllrs)[i] = 2.0 * (tx + sigma * prng.gaussian()) / (sigma * sigma);
        }
        static thread_local phy::LdpcCode::DecodeResult res;
        code.decode_into(*cllrs, 50, /*normalization=*/0.8, res, ws);
        acc.ldpc_err += hamming_distance(res.info, *info2);
        acc.total += 324;
      },
      [](CodedBer& acc, const CodedBer& part) {
        acc.conv_err += part.conv_err;
        acc.ldpc_err += part.ldpc_err;
        acc.total += part.total;
      });
  for (std::size_t p = 0; p < kPoints; ++p) {
    const double ebn0_db = 0.5 * static_cast<double>(p);
    const CodedBer& cell = coded_points[p];
    const double bc =
        static_cast<double>(cell.conv_err) / static_cast<double>(cell.total);
    const double bl =
        static_cast<double>(cell.ldpc_err) / static_cast<double>(cell.total);
    ebn0s.push_back(ebn0_db);
    ber_conv.push_back(bc);
    ber_ldpc.push_back(bl);
    std::printf("%12.1f %14.6f %14.6f\n", ebn0_db, bc, bl);
  }
  bu::series("ber_vs_ebn0_conv_k7", "ebn0_db", ebn0s, "ber", ber_conv);
  bu::series("ber_vs_ebn0_ldpc_648", "ebn0_db", ebn0s, "ber", ber_ldpc);
  const double req_conv = bu::crossing(ebn0s, ber_conv, 1e-4);
  const double req_ldpc = bu::crossing(ebn0s, ber_ldpc, 1e-4);
  const double gain_db = req_conv - req_ldpc;
  std::printf("\n  Eb/N0 @ BER=1e-4: conv %.2f dB, LDPC %.2f dB -> coding "
              "gain %.2f dB\n", req_conv, req_ldpc, gain_db);

  bu::section(
      "full 802.11n link, MCS3 (16-QAM 1/2), office multipath (PER vs SNR)");
  // Frequency-selective fading: the code works across tones, so coding
  // strength translates into PER (a single flat tap would bury both coders
  // in the same deep fades).
  std::vector<double> snrs;
  std::vector<double> per_bcc;
  std::vector<double> per_ldpc;
  std::printf("%10s %10s %10s\n", "SNR(dB)", "BCC", "LDPC");
  // --batch: the trial-batched runner is bitwise identical to the scalar
  // one; --quantized re-runs each point from a paired seed on the int16
  // decoders and records the worst PER divergence.
  const std::size_t batch = bu::batch_lanes();
  const bool quant = batch != 0 && bu::quantized();
  // Quantized re-runs widen to a multiple of the int16 SIMD width (the
  // int16 kernels are deterministic across lane counts, and more lanes
  // per vector is the fast path's point).
  const std::size_t qlanes =
      std::min<std::size_t>(16, ((batch + dsp::simd::kI16Width - 1) /
                                 dsp::simd::kI16Width) *
                                    dsp::simd::kI16Width);
  double quant_delta_max = 0.0;
  for (double snr = 6.0; snr <= 22.0; snr += 2.0) {
    phy::HtConfig bcc;
    bcc.mcs = 3;
    phy::HtConfig ldpc = bcc;
    ldpc.coding = phy::HtCoding::kLdpc;
    LinkResult rb;
    LinkResult rl;
    if (batch) {
      Rng qb = rng;
      rb = run_ht_link_batched(bcc, 400, 150, snr, rng, {batch, false},
                               channel::DelayProfile::kOffice);
      if (quant) {
        const LinkResult q = run_ht_link_batched(
            bcc, 400, 150, snr, qb, {qlanes, true},
            channel::DelayProfile::kOffice);
        quant_delta_max =
            std::max(quant_delta_max, std::abs(q.per() - rb.per()));
      }
      Rng ql = rng;
      rl = run_ht_link_batched(ldpc, 400, 150, snr, rng, {batch, false},
                               channel::DelayProfile::kOffice);
      if (quant) {
        const LinkResult q = run_ht_link_batched(
            ldpc, 400, 150, snr, ql, {qlanes, true},
            channel::DelayProfile::kOffice);
        quant_delta_max =
            std::max(quant_delta_max, std::abs(q.per() - rl.per()));
      }
    } else {
      rb = run_ht_link(bcc, 400, 150, snr, rng, channel::DelayProfile::kOffice);
      rl = run_ht_link(ldpc, 400, 150, snr, rng,
                       channel::DelayProfile::kOffice);
    }
    snrs.push_back(snr);
    per_bcc.push_back(rb.per());
    per_ldpc.push_back(rl.per());
    std::printf("%10.1f %10.2f %10.2f\n", snr, rb.per(), rl.per());
  }
  bu::series("per_vs_snr_bcc_mcs3", "snr_db", snrs, "per", per_bcc);
  bu::series("per_vs_snr_ldpc_mcs3", "snr_db", snrs, "per", per_ldpc);
  const double snr_bcc = bu::crossing(snrs, per_bcc, 0.10);
  const double snr_ldpc = bu::crossing(snrs, per_ldpc, 0.10);
  const double link_gain = snr_bcc - snr_ldpc;

  // Convert the dB gain to a range multiple: beyond the breakpoint the
  // model slopes at 35 dB/decade.
  channel::PathLossModel pl;
  const double base_range = pl.distance_for_path_loss(95.0);
  const double extended = pl.distance_for_path_loss(95.0 + std::max(link_gain, 0.0));
  const double range_multiple = extended / base_range;

  bu::section("what the gain buys");
  std::printf("  link SNR advantage @ PER=10%%: %.1f dB\n", link_gain);
  std::printf("  range multiple via 3.5-exponent path loss: %.2fx\n",
              range_multiple);

  bu::metric("coding_gain_db_at_ber_1e4", gain_db);
  bu::metric("link_gain_db_at_per_10pct", link_gain);
  bu::metric("range_multiple", range_multiple);
  if (batch) bu::metric("batch_lanes", static_cast<double>(batch));
  if (quant) {
    bu::metric("quantized_per_delta_max", quant_delta_max);
    bu::metric("quantized_lane_multiple",
               static_cast<double>(dsp::simd::kI16Width) /
                   static_cast<double>(dsp::simd::kWidth));
    std::printf("  quantized int16 path: worst PER delta %.3f, "
                "%zu int16 lanes vs %zu double lanes\n",
                quant_delta_max, dsp::simd::kI16Width, dsp::simd::kWidth);
  }
  const bool ok = gain_db > 0.5 && link_gain > -0.5;
  bu::verdict(ok,
              "LDPC gains %.1f dB on coded BPSK and %.1f dB at the 11n link "
              "level, i.e. %.0f%% more range at equal rate",
              gain_db, link_gain, (range_multiple - 1.0) * 100.0);
  return ok ? 0 : 1;
}

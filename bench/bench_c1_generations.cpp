// C1 — The generational rate/spectral-efficiency table.
//
// Paper: 802.11 "0.1 bps/Hz with a maximum data rate of 2 Mbps in a
// 20 MHz channel"; 802.11b/CCK "0.5 bps/Hz ... fivefold increase";
// 802.11a "54 Mbps yielded a spectral efficiency of 2.7 bps/Hz ...
// approximately fivefold increase"; 802.11n "up to 15 bps/Hz ...
// maintains the historical trend of fivefold increases", "rates
// potentially as high as 600 Mbps in a 40 MHz channel".
//
// Every rate below is measured from the implemented modem: the symbol
// clock and bits-per-symbol of the waveform the TX actually emits, and a
// high-SNR Monte-Carlo verifying the receiver delivers those bits.
#include <vector>

#include "bench_util.h"
#include "core/wlan.h"

int main(int argc, char** argv) {
  using namespace wlan;
  namespace bu = benchutil;
  bu::args(argc, argv);

  bu::title("C1: generations of 802.11 — rate and spectral efficiency",
            "each generation multiplies spectral efficiency ~5x: "
            "0.1 -> 0.5 -> 2.7 -> 15 bps/Hz (2 / 11 / 54 / 600 Mbps)");

  Rng rng(1);

  struct Row {
    const char* name;
    double measured_mbps;
    double width_mhz;
    double per_at_op_snr;
  };
  std::vector<Row> rows;

  // 802.11 DSSS: 2 bits per 11-chip symbol at 11 Mchip/s = 2 Mbps.
  {
    const phy::DsssModem modem({phy::DsssRate::k2Mbps, true});
    const double rate =
        phy::dsss_bits_per_symbol(phy::DsssRate::k2Mbps) * 11e6 /
        static_cast<double>(modem.chips_per_symbol()) / 1e6;
    const LinkResult r = run_dsss_link({phy::DsssRate::k2Mbps, true}, 2000, 50,
                                       12.0, rng);
    rows.push_back({"802.11  DSSS", rate, 20.0, r.per()});
  }
  // 802.11b CCK: 8 bits per 8-chip symbol at 11 Mchip/s = 11 Mbps.
  {
    const double rate = 8.0 * 11e6 / 8.0 / 1e6;
    const LinkResult r = run_cck_link(phy::CckRate::k11Mbps, 2000, 50, 12.0, rng);
    rows.push_back({"802.11b CCK", rate, 22.0, r.per()});
  }
  // 802.11a/g OFDM: 216 data bits per 4 us symbol = 54 Mbps.
  {
    const auto& info = phy::ofdm_mcs_info(phy::OfdmMcs::k54Mbps);
    const double rate = static_cast<double>(info.n_dbps) / 4.0;
    const LinkResult r =
        run_ofdm_link(phy::OfdmMcs::k54Mbps, 1000, 50, 28.0, rng);
    rows.push_back({"802.11a/g OFDM", rate, 20.0, r.per()});
  }
  // 802.11n MIMO-OFDM: MCS31, 40 MHz, short GI = 600 Mbps.
  {
    phy::HtConfig cfg;
    cfg.mcs = 31;
    cfg.bandwidth = phy::HtBandwidth::k40MHz;
    cfg.guard = phy::HtGuardInterval::kShort;
    cfg.n_rx = 4;
    const phy::HtPhy phy(cfg);
    const LinkResult r = run_ht_link(cfg, 1000, 30, 38.0, rng,
                                     channel::DelayProfile::kOffice);
    rows.push_back({"802.11n MIMO", phy.data_rate_mbps(), 40.0, r.per()});
  }

  bu::section("measured top modes (operating-point SNR chosen per generation)");
  std::printf("%-16s %12s %10s %12s %14s\n", "generation", "rate(Mbps)",
              "BW(MHz)", "bps/Hz", "PER@op-SNR");
  std::vector<double> eff;
  for (const Row& row : rows) {
    const double e = row.measured_mbps / row.width_mhz;
    eff.push_back(e);
    std::printf("%-16s %12.1f %10.0f %12.2f %14.3f\n", row.name,
                row.measured_mbps, row.width_mhz, e, row.per_at_op_snr);
  }

  {
    std::vector<double> gen;
    std::vector<double> rate;
    std::vector<double> per;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      gen.push_back(static_cast<double>(i));
      rate.push_back(rows[i].measured_mbps);
      per.push_back(rows[i].per_at_op_snr);
    }
    bu::series("spectral_efficiency", "generation", gen, "bps_per_hz", eff);
    bu::series("top_rate", "generation", gen, "mbps", rate);
    bu::series("per_at_operating_snr", "generation", gen, "per", per);
  }

  bu::section("efficiency ratios between consecutive generations");
  bool fivefold = true;
  for (std::size_t i = 1; i < eff.size(); ++i) {
    const double ratio = eff[i] / eff[i - 1];
    std::printf("  %s / %s = %.1fx\n", rows[i].name, rows[i - 1].name, ratio);
    bu::metric(std::string("efficiency_ratio_") + std::to_string(i), ratio);
    if (ratio < 4.0 || ratio > 7.0) fivefold = false;
  }

  bool delivered = true;
  for (const Row& row : rows) delivered = delivered && row.per_at_op_snr < 0.2;

  bu::verdict(fivefold && delivered,
              "efficiencies %.1f / %.1f / %.1f / %.1f bps/Hz; every ratio in "
              "the ~5x band; all receivers deliver at their operating SNR",
              eff[0], eff[1], eff[2], eff[3]);
  return fivefold && delivered ? 0 : 1;
}

// C9 — Mesh networking: coverage area and intelligent routing.
//
// Paper: "Mesh networks have the potential to dramatically increase the
// area served by a wireless network. Mesh networks even have the
// potential, with sufficiently intelligent routing algorithms, to boost
// overall spectral efficiencies attained by selecting multiple hops over
// high capacity links rather than single hops over low capacity links."
#include <vector>

#include "bench_util.h"
#include "core/wlan.h"

int main(int argc, char** argv) {
  using namespace wlan;
  namespace bu = benchutil;
  bu::args(argc, argv);

  bu::title("C9: mesh coverage and airtime-aware routing",
            "mesh dramatically grows served area; airtime routing beats "
            "single low-rate hops with several high-rate hops");

  channel::PathLossModel pl;
  Rng rng(9);
  const int topologies = 25;
  const std::size_t n_nodes = 40;

  bu::section("served area vs deployment size (40 nodes, 25 random topologies)");
  std::printf("%12s %14s %14s %10s\n", "side (m)", "direct cover",
              "mesh cover", "gain");
  double cover_gain_at_600 = 0.0;
  std::vector<double> sides;
  std::vector<double> direct_cover;
  std::vector<double> mesh_cover;
  for (const double side : {200.0, 400.0, 600.0, 800.0}) {
    double direct = 0.0;
    double meshed = 0.0;
    for (int t = 0; t < topologies; ++t) {
      const auto net = mesh::MeshNetwork::random(rng, n_nodes, side, pl);
      const auto cov = net.coverage(0);
      direct += cov.direct_fraction;
      meshed += cov.mesh_fraction;
    }
    direct /= topologies;
    meshed /= topologies;
    if (side == 600.0) cover_gain_at_600 = meshed / direct;
    sides.push_back(side);
    direct_cover.push_back(direct);
    mesh_cover.push_back(meshed);
    std::printf("%12.0f %13.0f%% %13.0f%% %9.1fx\n", side, 100.0 * direct,
                100.0 * meshed, meshed / direct);
  }
  bu::series("direct_cover_vs_side", "side_m", sides, "fraction", direct_cover);
  bu::series("mesh_cover_vs_side", "side_m", sides, "fraction", mesh_cover);

  bu::section("end-to-end throughput by routing policy (600 m deployments)");
  std::printf("%16s %12s %12s %12s\n", "", "direct", "min-hop", "airtime");
  double sum_direct = 0.0;
  double sum_hop = 0.0;
  double sum_air = 0.0;
  int pairs = 0;
  int airtime_multihop_wins = 0;
  for (int t = 0; t < topologies; ++t) {
    const auto net = mesh::MeshNetwork::random(rng, n_nodes, 600.0, pl);
    for (std::size_t dst = 1; dst <= 8; ++dst) {
      const auto direct = net.direct_route(0, dst);
      const auto hop = net.shortest_route(0, dst, mesh::MeshNetwork::Metric::kHopCount);
      const auto air = net.shortest_route(0, dst, mesh::MeshNetwork::Metric::kAirtime);
      if (!air.reachable()) continue;
      ++pairs;
      sum_direct += direct.end_to_end_mbps;
      sum_hop += hop.end_to_end_mbps;
      sum_air += air.end_to_end_mbps;
      if (air.hops() > 1 && direct.reachable() &&
          air.end_to_end_mbps > direct.end_to_end_mbps) {
        ++airtime_multihop_wins;
      }
    }
  }
  std::printf("%16s %10.1f M %10.1f M %10.1f M   (mean over %d pairs)\n",
              "mean throughput", sum_direct / pairs, sum_hop / pairs,
              sum_air / pairs, pairs);
  std::printf("\n  pairs where several fast hops beat a usable direct link: "
              "%d\n", airtime_multihop_wins);

  bu::metric("cover_gain_at_600m", cover_gain_at_600);
  bu::metric("mean_mbps_direct", sum_direct / pairs);
  bu::metric("mean_mbps_min_hop", sum_hop / pairs);
  bu::metric("mean_mbps_airtime", sum_air / pairs);
  const bool covers = cover_gain_at_600 > 1.5;
  const bool routing_wins =
      sum_air >= sum_hop && sum_air > sum_direct && airtime_multihop_wins > 0;
  bu::verdict(covers && routing_wins,
              "mesh serves %.1fx the nodes at 600 m scale; airtime routing "
              "averages %.1f Mbps vs %.1f (min-hop) and %.1f (direct)",
              cover_gain_at_600, sum_air / pairs, sum_hop / pairs,
              sum_direct / pairs);
  return covers && routing_wins ? 0 : 1;
}

// EXT-CITY — the sharded engine takes the PER-model netsim to a
// 10,000-node dense-urban deployment.
//
// A city block is mostly empty air: apartments couple strongly inside
// a building, buildings barely couple across a street. `plan_shards`
// turns that locality into structure — per-building shards with
// neighbor-bounded gain storage — so a deployment whose dense gain
// matrix alone would cost ~800 MB simulates in minutes on a laptop.
// The claims under test: (1) the full 10k-node sweep completes, with
// every building landing in its own shard; (2) the merged metrics
// snapshot is bitwise identical at 1 worker lane and 8, so the speedup
// is free of nondeterminism; (3) the frame-lifecycle auditor sees zero
// conservation breaches across all shards.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/wlan.h"
#include "net/shard.h"
#include "par/pool.h"

namespace {

struct Deployment {
  std::vector<wlan::net::NodeConfig> nodes;
  std::vector<wlan::net::Flow> flows;
};

/// TGax-style apartment-block city: `buildings` x `buildings` buildings
/// on a `building_pitch_m` street grid; each building holds
/// `apartments` x `apartments` apartments `apartment_pitch_m` apart;
/// each apartment one AP plus `stas` STAs on a short ring, every STA a
/// saturated uplink.
Deployment make_city(std::size_t buildings, double building_pitch_m,
                     std::size_t apartments, double apartment_pitch_m,
                     std::size_t stas, double sta_radius_m) {
  Deployment d;
  for (std::size_t by = 0; by < buildings; ++by) {
    for (std::size_t bx = 0; bx < buildings; ++bx) {
      for (std::size_t ay = 0; ay < apartments; ++ay) {
        for (std::size_t ax = 0; ax < apartments; ++ax) {
          const double x = static_cast<double>(bx) * building_pitch_m +
                           static_cast<double>(ax) * apartment_pitch_m;
          const double y = static_cast<double>(by) * building_pitch_m +
                           static_cast<double>(ay) * apartment_pitch_m;
          const std::size_t ap = d.nodes.size();
          d.nodes.push_back({{x, y}});
          for (std::size_t s = 0; s < stas; ++s) {
            const double angle = 2.0 * M_PI * static_cast<double>(s) /
                                 static_cast<double>(stas);
            d.nodes.push_back({{x + sta_radius_m * std::cos(angle),
                                y + sta_radius_m * std::sin(angle)}});
            d.flows.push_back({d.nodes.size() - 1, ap});
          }
        }
      }
    }
  }
  return d;
}

double wall_s(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// --overlap: ONE connected 100k-node city through the conservative-time
/// border exchange. The street grid shrinks until adjacent buildings
/// couple (the gap sits inside the planner's cutoff radius), so
/// component sharding would collapse to a single monolithic shard;
/// spatial tiles + lockstep epochs are what make it parallel. Claims:
/// the full run completes, is ONE component, is bitwise identical at 1
/// and 8 lanes, audits clean, and 8 bordered lanes beat 1 bordered lane
/// by >= 3x (gated at the default 32x32 grid only — smoke grids report
/// the speedup as info).
int run_overlap(std::size_t grid) {
  using namespace wlan;
  namespace bu = benchutil;
  const bool full = grid == 32;

  bu::title(full ? "EXT-CITY-OVERLAP: 100k-node border-exchange city"
                 : "EXT-CITY-OVERLAP-SMOKE: bordered city smoke grid",
            "one connected 100k-node city — too coupled for component "
            "sharding — runs as spatial tiles in conservative-time "
            "lockstep, bitwise identical at any lane count, zero "
            "lifecycle breaches, and >= 3x parallel scaling (8-lane "
            "wall clock on a multicore host; measured lockstep-schedule "
            "parallelism on fewer than 4 cores)");

  net::NetworkConfig cfg;
  cfg.duration_s = 0.02;
  cfg.payload_bytes = 1000;
  cfg.rts_cts = false;
  cfg.error_model.model = net::RxModel::kPerModel;
  cfg.error_model.shadowing_sigma_db = 4.0;
  cfg.error_model.realizations = 8;
  cfg.pathloss.exponent_after = 5.0;

  bu::section("topology");
  // 120 m pitch leaves an 80 m street gap — inside the ~106 m cutoff
  // radius of this config, so the whole city is one coupled component.
  constexpr double kPitchM = 120.0;
  constexpr std::size_t kApartments = 5;
  const Deployment city = make_city(grid, kPitchM, kApartments, 10.0, 3, 2.0);
  std::printf("  buildings     : %zu x %zu on a %.0f m street grid\n", grid,
              grid, kPitchM);
  std::printf("  nodes         : %zu (%zu flows, all saturated uplink)\n",
              city.nodes.size(), city.flows.size());

  bu::section("plans");
  // Component plan first: proves the deployment really is one giant
  // component (the regime border mode exists for).
  net::ShardOptions component_opt;
  auto t0 = std::chrono::steady_clock::now();
  const net::ShardPlan component_plan =
      plan_shards(cfg, city.nodes, component_opt, &city.flows);
  const std::size_t components = component_plan.shards.size();
  std::printf("  components    : %zu (cutoff radius %.1f m vs %.0f m gap)\n",
              components, component_plan.cutoff_radius_m,
              kPitchM - 10.0 * static_cast<double>(kApartments - 1));

  net::ShardOptions opt;
  opt.border = true;
  opt.border_tile_m = 2.0 * kPitchM;  // 2x2 buildings per tile
  const net::ShardPlan plan = plan_shards(cfg, city.nodes, opt, &city.flows);
  const double plan_s = wall_s(t0);
  std::printf("  tiles         : %zu (%.0f m square)\n", plan.shards.size(),
              opt.border_tile_m);
  std::printf("  lookahead     : %.2f us (min border distance %.1f m)\n",
              plan.lookahead_s * 1e6, plan.min_border_m);
  std::printf("  edges         : %zu intra + %zu border\n",
              plan.n_edges() - plan.total_border_edges(),
              plan.total_border_edges());
  std::printf("  load balance  : max/mean shard weight %.2f\n",
              plan.load_imbalance());
  std::printf("  planned in %.2f s (both plans)\n", plan_s);

  // The bordered city at 1 lane, then 8: bitwise-identical snapshots,
  // and the wall-clock ratio is the tentpole speedup.
  std::uint64_t breaches = 0;
  net::NetworkResult result;
  std::string snapshots[2];
  double run_s[2] = {0.0, 0.0};
  double par_runs[2] = {0.0, 0.0};
  const unsigned lanes[2] = {1, 8};
  for (int i = 0; i < 2; ++i) {
    bu::section(("bordered run, " + std::to_string(lanes[i]) + " lane" +
                 (lanes[i] > 1 ? "s" : ""))
                    .c_str());
    obs::Registry reg;
    net::NetworkConfig run_cfg = cfg;
    run_cfg.registry = &reg;
    if (bu::latency()) run_cfg.lifecycle.enabled = true;
    net::ShardOptions run_opt = opt;
    run_opt.jobs = lanes[i];
    Rng rng(11);
    t0 = std::chrono::steady_clock::now();
    result = simulate_network_sharded(run_cfg, city.nodes, city.flows,
                                      run_opt, rng, &plan);
    run_s[i] = wall_s(t0);
    snapshots[i] = reg.snapshot_json();
    breaches += result.lifecycle.breaches;
    std::printf(
        "  throughput %.1f Mbps, delivered %llu, %zu epochs, %.1f s wall\n",
        result.aggregate_throughput_mbps,
        static_cast<unsigned long long>(result.total_delivered),
        result.border.epochs, run_s[i]);
    std::printf("  border msgs %llu, epoch utilization %.2f, imbalance %.2f\n",
                static_cast<unsigned long long>(result.border.messages),
                result.border.utilization, result.border.imbalance);
    std::printf("  phases: setup %.1f s, epochs %.1f s, finalize %.1f s, "
                "merge %.1f s\n",
                result.border.setup_s, result.border.wall_s,
                result.border.finalize_s, result.border.merge_s);
    par_runs[i] = result.border.critical_path_s > 0.0
                      ? result.border.busy_s / result.border.critical_path_s
                      : 0.0;
  }
  const bool deterministic = snapshots[0] == snapshots[1];
  const double speedup = run_s[1] > 0.0 ? run_s[0] / run_s[1] : 0.0;
  // The speedup an unlimited-core host could extract from the lockstep
  // schedule: total tile busy time over the sum of per-round
  // slowest-tile times. On a single-core host the wall-clock ratio is
  // meaningless (8 lanes time-slice 1 core), so the scaling gate falls
  // back to this measured schedule property. The best of the two runs
  // counts: the schedule is identical, time-slicing noise only ever
  // inflates a round's critical path.
  const unsigned cores = par::ThreadPool::hardware_jobs();
  const double parallelism = std::max(par_runs[0], par_runs[1]);
  std::printf("\n  merged snapshots at 1 vs 8 lanes: %s (%zu bytes)\n",
              deterministic ? "bitwise identical" : "DIVERGED",
              snapshots[0].size());
  std::printf("  speedup: %.2fx (%.1f s -> %.1f s) on %u core(s)\n", speedup,
              run_s[0], run_s[1], cores);
  std::printf("  schedule parallelism: %.1fx at 1 lane, %.1fx at 8\n",
              par_runs[0], par_runs[1]);

  // Deterministic results: pinned by the regression gate.
  bu::metric("nodes", static_cast<double>(city.nodes.size()));
  bu::metric("flows", static_cast<double>(city.flows.size()));
  bu::metric("components", static_cast<double>(components));
  bu::metric("tiles", static_cast<double>(plan.shards.size()));
  bu::metric("lookahead_us", plan.lookahead_s * 1e6);
  bu::metric("border_edges", static_cast<double>(plan.total_border_edges()));
  bu::metric("shard_load_imbalance", plan.load_imbalance());
  bu::metric("epochs", static_cast<double>(result.border.epochs));
  bu::metric("border_messages", static_cast<double>(result.border.messages));
  bu::metric("city_throughput_mbps", result.aggregate_throughput_mbps);
  bu::metric("data_failure_rate", result.data_failure_rate());
  bu::metric("jain_fairness", result.jain_fairness());
  bu::metric("jobs_bitwise_identical", deterministic ? 1.0 : 0.0);
  bu::metric("lifecycle_breaches", static_cast<double>(breaches));
  // Wall-clock: visible to scripts, invisible to the gate.
  bu::info("wall_s_1lane", run_s[0]);
  bu::info("wall_s_8lane", run_s[1]);
  bu::info("speedup_8v1", speedup);
  bu::info("epoch_utilization", result.border.utilization);
  bu::info("epoch_imbalance", result.border.imbalance);
  bu::info("epoch_wall_s", result.border.wall_s);
  bu::info("setup_s", result.border.setup_s);
  bu::info("finalize_s", result.border.finalize_s);
  bu::info("merge_s", result.border.merge_s);
  bu::info("host_cores", static_cast<double>(cores));
  bu::info("epoch_parallelism", parallelism);

  const std::size_t min_nodes = full ? 100000 : 4 * 25 * grid * grid;
  const std::size_t min_tiles = full ? 64 : 2;
  bool ok = city.nodes.size() >= min_nodes && components == 1 &&
            plan.shards.size() >= min_tiles && deterministic &&
            breaches == 0 && result.aggregate_throughput_mbps > 0.0;
  // The >= 3x bar is a property of the full-size problem; tiny smoke
  // grids have too little work per epoch to amortize the barrier. With
  // fewer than 4 real cores the wall-clock ratio cannot show scaling,
  // so the bar moves to the schedule-parallelism measurement.
  if (full) ok = ok && (cores >= 4 ? speedup >= 3.0 : parallelism >= 3.0);
  bu::verdict(ok,
              "%zu nodes, %zu component(s), %zu tiles, deterministic=%d, "
              "%llu breaches, %.2fx on 8 lanes (%u cores), schedule "
              "parallelism %.1fx",
              city.nodes.size(), components, plan.shards.size(),
              deterministic ? 1 : 0,
              static_cast<unsigned long long>(breaches), speedup, cores,
              parallelism);
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wlan;
  namespace bu = benchutil;
  bu::args(argc, argv);

  if (bu::overlap_grid() != 0) return run_overlap(bu::overlap_grid());

  bu::title("EXT-CITY: spatially sharded 10k-node city simulation",
            "a 10,000-node apartment-block city under the EESM/PER model "
            "completes in minutes via per-building shards, bitwise "
            "identical at 1 and 8 worker lanes, with zero lifecycle "
            "breaches");

  net::NetworkConfig cfg;
  cfg.duration_s = 0.25;
  cfg.payload_bytes = 1000;
  cfg.rts_cts = false;
  cfg.error_model.model = net::RxModel::kPerModel;
  // 3-sigma shadowing upside (12 dB) stays inside the 15 dB cutoff
  // margin, so decoupling distant buildings is sound.
  cfg.error_model.shadowing_sigma_db = 4.0;
  cfg.error_model.realizations = 8;
  // Dense urban: walls and clutter steepen the dual-slope model well
  // past the office default, which is what isolates the buildings.
  cfg.pathloss.exponent_after = 5.0;

  net::ShardOptions shard_opt;  // 15 dB margin, auto tile size

  bu::section("topology");
  constexpr std::size_t kBuildings = 10;
  constexpr double kBuildingPitchM = 160.0;
  constexpr std::size_t kApartments = 5;
  constexpr double kApartmentPitchM = 10.0;
  constexpr std::size_t kStas = 3;
  constexpr double kStaRadiusM = 2.0;
  const Deployment city =
      make_city(kBuildings, kBuildingPitchM, kApartments, kApartmentPitchM,
                kStas, kStaRadiusM);
  const double street_gap_m =
      kBuildingPitchM - static_cast<double>(kApartments - 1) * kApartmentPitchM;
  std::printf("  buildings     : %zu x %zu on a %.0f m street grid\n",
              kBuildings, kBuildings, kBuildingPitchM);
  std::printf("  apartments    : %zu x %zu per building, %.0f m pitch\n",
              kApartments, kApartments, kApartmentPitchM);
  std::printf("  nodes         : %zu (%zu flows, all saturated uplink)\n",
              city.nodes.size(), city.flows.size());
  std::printf("  street gap    : %.0f m between building edges\n",
              street_gap_m);

  bu::section("shard plan");
  auto t0 = std::chrono::steady_clock::now();
  const net::ShardPlan plan =
      plan_shards(cfg, city.nodes, shard_opt, &city.flows);
  const double plan_s = wall_s(t0);
  std::printf("  cutoff        : %.1f dBm (radius %.1f m)\n",
              plan.cutoff_rx_dbm, plan.cutoff_radius_m);
  std::printf("  shards        : %zu\n", plan.shards.size());
  std::printf("  edges         : %zu (mean degree %.1f, max %zu)\n",
              plan.n_edges(), plan.mean_degree(), plan.max_degree());
  std::printf("  load balance  : max/mean shard weight %.2f (max %.0f, "
              "mean %.1f)\n",
              plan.load_imbalance(), plan.max_load_weight(),
              plan.mean_load_weight());
  std::printf("  planned in %.2f s\n", plan_s);
  const double dense_gb = static_cast<double>(city.nodes.size()) *
                          static_cast<double>(city.nodes.size()) * 8.0 / 1e9;
  const double sparse_mb = static_cast<double>(plan.n_edges()) * 2.0 * 8.0 / 1e6;
  std::printf("  gain storage  : %.1f MB sparse vs %.1f GB dense\n", sparse_mb,
              dense_gb);

  // The full city, twice: 1 worker lane, then 8. Shard simulation order
  // and seeds (par::derive_seed) are fixed by the plan, so the merged
  // registries must match byte for byte.
  std::uint64_t breaches = 0;
  net::NetworkResult result;
  std::string snapshots[2];
  double run_s[2] = {0.0, 0.0};
  const unsigned lanes[2] = {1, 8};
  for (int i = 0; i < 2; ++i) {
    bu::section(("city run, " + std::to_string(lanes[i]) + " lane" +
                 (lanes[i] > 1 ? "s" : ""))
                    .c_str());
    obs::Registry reg;
    net::NetworkConfig run_cfg = cfg;
    run_cfg.registry = &reg;
    if (bu::latency()) run_cfg.lifecycle.enabled = true;
    net::ShardOptions opt = shard_opt;
    opt.jobs = lanes[i];
    Rng rng(11);
    t0 = std::chrono::steady_clock::now();
    result = simulate_network_sharded(run_cfg, city.nodes, city.flows, opt,
                                      rng, &plan);
    run_s[i] = wall_s(t0);
    snapshots[i] = reg.snapshot_json();
    breaches += result.lifecycle.breaches;
    std::printf("  throughput %.1f Mbps, delivered %llu, %.1f s wall\n",
                result.aggregate_throughput_mbps,
                static_cast<unsigned long long>(result.total_delivered),
                run_s[i]);
  }
  const bool deterministic = snapshots[0] == snapshots[1];
  std::printf("  merged snapshots at 1 vs 8 lanes: %s (%zu bytes)\n",
              deterministic ? "bitwise identical" : "DIVERGED",
              snapshots[0].size());

  bu::section("city results");
  std::size_t starved = 0;
  for (const auto& f : result.flows) {
    if (f.delivered == 0) ++starved;
  }
  std::printf("  data frames %llu, failure rate %.3f, starved flows %zu\n",
              static_cast<unsigned long long>(result.data_tx_count),
              result.data_failure_rate(), starved);
  std::printf("  Jain fairness %.3f across %zu flows\n",
              result.jain_fairness(), result.flows.size());

  // Link health through the batched PER path: expected PER of the
  // 2 m AP<-STA hop, averaged over the fading dictionary.
  Rng link_rng(7);
  const net::LinkPerModel link(cfg.generation, cfg.data_rate_mbps,
                               cfg.payload_bytes + 28, cfg.error_model,
                               link_rng);
  const double link_snr_db =
      snr_at_distance_db(cfg.pathloss, kStaRadiusM, 17.0, cfg.bandwidth_hz);
  std::vector<double> snr(link.realizations(), link_snr_db);
  std::vector<std::uint32_t> realization(link.realizations());
  std::iota(realization.begin(), realization.end(), 0u);
  std::vector<double> per(link.realizations());
  link.per_batch(snr, realization, per);
  const double mean_per =
      std::accumulate(per.begin(), per.end(), 0.0) /
      static_cast<double>(per.size());
  std::printf("  in-apartment link: %.1f dB SNR, expected PER %.4f\n",
              link_snr_db, mean_per);

  bu::metric("nodes", static_cast<double>(city.nodes.size()));
  bu::metric("flows", static_cast<double>(city.flows.size()));
  bu::metric("shards", static_cast<double>(plan.shards.size()));
  bu::metric("mean_degree", plan.mean_degree());
  bu::metric("plan_edges", static_cast<double>(plan.n_edges()));
  bu::metric("city_throughput_mbps", result.aggregate_throughput_mbps);
  bu::metric("jain_fairness", result.jain_fairness());
  bu::metric("data_failure_rate", result.data_failure_rate());
  bu::metric("starved_flows", static_cast<double>(starved));
  bu::metric("expected_link_per", mean_per);
  bu::metric("jobs_bitwise_identical", deterministic ? 1.0 : 0.0);
  bu::metric("lifecycle_breaches", static_cast<double>(breaches));

  if (bu::latency()) {
    bu::section("frame lifecycle (--latency)");
    const auto& lc = result.lifecycle;
    bu::series("goodput_mbps_t", "t (s)", lc.series.t_s, "goodput (Mbps)",
               lc.series.goodput_mbps);
    bu::metric("stationarity_ratio", lc.series.stationarity_ratio);
    std::printf("  delivered %llu, dropped %llu; auditor breaches %llu\n",
                static_cast<unsigned long long>(lc.ledger.delivered),
                static_cast<unsigned long long>(lc.ledger.dropped),
                static_cast<unsigned long long>(breaches));
    for (const auto& msg : lc.breach_messages) {
      std::printf("  BREACH: %s\n", msg.c_str());
    }
  }

  const bool ok = city.nodes.size() >= 10000 && plan.shards.size() >= 50 &&
                  deterministic && breaches == 0 &&
                  result.aggregate_throughput_mbps > 0.0;
  bu::verdict(ok,
              "10k+ nodes in %zu shards, deterministic across lane counts, "
              "%llu lifecycle breaches",
              plan.shards.size(),
              static_cast<unsigned long long>(breaches));
  return ok ? 0 : 1;
}

// EXT-MBSS — PER-model netsim scales to a 63-node multi-BSS deployment.
//
// The point of the link-to-system abstraction is exactly this workload:
// a 3x3 grid of BSSs (9 APs, 6 saturated uplink clients each) is far
// beyond what per-frame waveform simulation could touch, but with
// EESM/PER reception, log-normal shadowing, and per-station ARF it runs
// in seconds. The claim under test is spatial reuse: co-channel BSSs
// spaced near the carrier-sense range must reuse airtime, so the grid's
// aggregate throughput has to land well above a single cell's — while
// inter-BSS interference keeps it well below 9x.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/wlan.h"

namespace {

struct Deployment {
  std::vector<wlan::net::NodeConfig> nodes;
  std::vector<wlan::net::Flow> flows;
};

/// `bss_grid` x `bss_grid` APs spaced `spacing_m` apart, `clients` STAs
/// per AP on a `radius_m` ring, every STA running a saturated uplink.
Deployment make_grid(std::size_t bss_grid, double spacing_m,
                     std::size_t clients, double radius_m) {
  Deployment d;
  for (std::size_t gy = 0; gy < bss_grid; ++gy) {
    for (std::size_t gx = 0; gx < bss_grid; ++gx) {
      const double ax = static_cast<double>(gx) * spacing_m;
      const double ay = static_cast<double>(gy) * spacing_m;
      const std::size_t ap = d.nodes.size();
      d.nodes.push_back({{ax, ay}});
      for (std::size_t c = 0; c < clients; ++c) {
        const double angle =
            2.0 * M_PI * static_cast<double>(c) / static_cast<double>(clients);
        d.nodes.push_back(
            {{ax + radius_m * std::cos(angle), ay + radius_m * std::sin(angle)}});
        d.flows.push_back({d.nodes.size() - 1, ap});
      }
    }
  }
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wlan;
  namespace bu = benchutil;
  bu::args(argc, argv);

  bu::title("EXT-MBSS: multi-BSS spatial reuse under the PER model",
            "a 63-node, 9-BSS co-channel grid simulated with EESM/PER "
            "reception, shadowing, and ARF shows spatial reuse: aggregate "
            "throughput well above one cell, well below nine isolated ones");

  net::NetworkConfig cfg;
  cfg.duration_s = 1.0;
  cfg.payload_bytes = 1000;
  // RTS/CTS matters beyond hidden-terminal protection here: ARF counts
  // only ACK timeouts as rate failures, so protecting the data frame
  // keeps collision losses (cheap RTS retries) from collapsing every
  // saturated station onto the bottom of the ladder.
  cfg.rts_cts = true;
  cfg.error_model.model = net::RxModel::kPerModel;
  cfg.error_model.shadowing_sigma_db = 4.0;
  cfg.error_model.realizations = 16;
  cfg.rate_control = net::RateControlMode::kArf;

  // Size the grid from the physics: clients sit where the mean SNR
  // leaves enough margin over the top of the ladder that Rayleigh fades
  // do not pin ARF to the bottom rates; APs sit near the edge of each
  // other's carrier-sense range so reuse is possible but not free.
  double radius_m = 5.0;
  while (snr_at_distance_db(cfg.pathloss, radius_m * 1.3, 17.0,
                            cfg.bandwidth_hz) > 34.0) {
    radius_m *= 1.3;
  }
  const double noise_dbm = -174.0 + 10.0 * std::log10(cfg.bandwidth_hz) + 6.0;
  const double cs_snr_db = -82.0 - noise_dbm;  // CS threshold as an SNR
  double spacing_m = radius_m;
  while (snr_at_distance_db(cfg.pathloss, spacing_m, 17.0, cfg.bandwidth_hz) >
         cs_snr_db) {
    spacing_m *= 1.1;
  }

  bu::section("topology");
  constexpr std::size_t kGrid = 3;
  constexpr std::size_t kClients = 6;
  const Deployment grid = make_grid(kGrid, spacing_m, kClients, radius_m);
  std::printf("  client radius : %6.1f m\n", radius_m);
  std::printf("  AP spacing    : %6.1f m (CS range edge)\n", spacing_m);
  std::printf("  nodes         : %6zu (%zu APs + %zu clients)\n",
              grid.nodes.size(), kGrid * kGrid, grid.flows.size());

  bu::section("single-cell reference");
  const Deployment cell = make_grid(1, spacing_m, kClients, radius_m);
  Rng cell_rng(11);
  const auto single = simulate_network(cfg, cell.nodes, cell.flows, cell_rng);
  std::printf("  throughput %.2f Mbps, data-failure rate %.3f\n",
              single.aggregate_throughput_mbps, single.data_failure_rate());

  bu::section("9-BSS co-channel grid");
  // --latency arms the frame-lifecycle layer on the representative grid
  // run: per-flow delay attribution histograms land in `lat_reg`, the
  // windowed series and auditor verdict in the result. Observers never
  // consume RNG, so throughput numbers are identical either way.
  obs::Registry lat_reg;
  if (bu::latency()) {
    cfg.lifecycle.enabled = true;
    cfg.registry = &lat_reg;
  }
  Rng grid_rng(11);
  const auto multi = simulate_network(cfg, grid.nodes, grid.flows, grid_rng);
  double rate_sum = 0.0;
  std::size_t starved = 0;
  for (const auto& f : multi.flows) {
    rate_sum += f.mean_data_rate_mbps;
    if (f.delivered == 0) ++starved;
  }
  const double mean_rate = rate_sum / static_cast<double>(multi.flows.size());
  const double reuse =
      multi.aggregate_throughput_mbps /
      std::max(single.aggregate_throughput_mbps, 1e-9);
  std::printf("  throughput %.2f Mbps (%.2fx one cell)\n",
              multi.aggregate_throughput_mbps, reuse);
  std::printf("  mean ARF data rate %.1f Mbps, Jain fairness %.3f\n",
              mean_rate, multi.jain_fairness());
  std::printf("  data frames %llu, failure rate %.3f, starved flows %zu\n",
              static_cast<unsigned long long>(multi.data_tx_count),
              multi.data_failure_rate(), starved);

  bu::metric("nodes", static_cast<double>(grid.nodes.size()));
  bu::metric("single_cell_throughput_mbps", single.aggregate_throughput_mbps);
  bu::metric("grid_throughput_mbps", multi.aggregate_throughput_mbps);
  bu::metric("spatial_reuse_factor", reuse);
  bu::metric("mean_arf_rate_mbps", mean_rate);
  bu::metric("jain_fairness", multi.jain_fairness());
  bu::metric("data_frames_simulated", static_cast<double>(multi.data_tx_count));

  bool audit_ok = true;
  if (bu::latency()) {
    bu::section("frame lifecycle (--latency)");
    const auto& lc = multi.lifecycle;
    // Per-flow tail latency: one series per percentile, x = flow index.
    std::vector<double> flow_idx;
    std::vector<double> p50, p95, p99, p999;
    for (std::size_t f = 0; f < grid.flows.size(); ++f) {
      const obs::Histogram* h = lat_reg.find_histogram(
          "lifecycle.delay_s", {{"flow", std::to_string(f)}});
      if (!h || h->count() == 0) continue;
      flow_idx.push_back(static_cast<double>(f));
      p50.push_back(h->percentile(50.0) * 1e3);
      p95.push_back(h->percentile(95.0) * 1e3);
      p99.push_back(h->percentile(99.0) * 1e3);
      p999.push_back(h->percentile(99.9) * 1e3);
    }
    bu::series("flow_delay_p50_ms", "flow", flow_idx, "p50 (ms)", p50);
    bu::series("flow_delay_p95_ms", "flow", std::vector<double>(flow_idx),
               "p95 (ms)", p95);
    bu::series("flow_delay_p99_ms", "flow", std::vector<double>(flow_idx),
               "p99 (ms)", p99);
    bu::series("flow_delay_p999_ms", "flow", std::vector<double>(flow_idx),
               "p99.9 (ms)", p999);
    const obs::Histogram* agg = lat_reg.find_histogram("lifecycle.delay_s");
    if (agg && agg->count() > 0) {
      bu::metric("delay_p50_ms", agg->percentile(50.0) * 1e3);
      bu::metric("delay_p95_ms", agg->percentile(95.0) * 1e3);
      bu::metric("delay_p99_ms", agg->percentile(99.0) * 1e3);
      bu::metric("delay_p999_ms", agg->percentile(99.9) * 1e3);
      std::printf("  delay p50/p95/p99/p99.9: %.2f / %.2f / %.2f / %.2f ms\n",
                  agg->percentile(50.0) * 1e3, agg->percentile(95.0) * 1e3,
                  agg->percentile(99.0) * 1e3, agg->percentile(99.9) * 1e3);
    }
    // Where the delay went, summed over all delivered frames.
    const auto& tot = lc.ledger.total;
    bu::metric("delay_queueing_share",
               tot.total_s() > 0.0 ? tot.queueing_s / tot.total_s() : 0.0);
    bu::metric("delay_contention_share",
               tot.total_s() > 0.0 ? tot.contention_s / tot.total_s() : 0.0);
    bu::metric("delay_airtime_share",
               tot.total_s() > 0.0 ? tot.airtime_s / tot.total_s() : 0.0);
    bu::metric("delay_retry_share",
               tot.total_s() > 0.0 ? tot.retry_s / tot.total_s() : 0.0);
    // Windowed time series for warmup/non-stationarity inspection.
    bu::series("goodput_mbps_t", "t (s)", lc.series.t_s, "goodput (Mbps)",
               lc.series.goodput_mbps);
    bu::series("collision_rate_t", "t (s)", lc.series.t_s, "collision rate",
               lc.series.collision_rate);
    bu::metric("warmup_windows", static_cast<double>(lc.series.warmup_windows));
    bu::metric("stationarity_ratio", lc.series.stationarity_ratio);
    bu::metric("lifecycle_breaches", static_cast<double>(lc.breaches));
    std::printf("  delivered %llu, dropped %llu, in flight %llu; "
                "auditor breaches %llu\n",
                static_cast<unsigned long long>(lc.ledger.delivered),
                static_cast<unsigned long long>(lc.ledger.dropped),
                static_cast<unsigned long long>(lc.ledger.in_flight),
                static_cast<unsigned long long>(lc.breaches));
    for (const std::string& m : lc.breach_messages) {
      std::printf("  BREACH: %s\n", m.c_str());
    }
    audit_ok = lc.breaches == 0;
  }

  const bool ok = audit_ok && grid.nodes.size() >= 50 &&
                  single.total_delivered > 0 &&
                  reuse > 1.5 && reuse < 9.0 && starved == 0 &&
                  mean_rate > 12.0;
  bu::verdict(ok,
              "%zu-node grid reaches %.1f Mbps = %.1fx one cell (reuse "
              "without a free lunch), every flow progresses, mean ARF rate "
              "%.1f Mbps",
              grid.nodes.size(), multi.aggregate_throughput_mbps, reuse,
              mean_rate);
  return ok ? 0 : 1;
}
